module Trace = Ovo_obs.Trace

module type COMPACTABLE = sig
  type state

  val cost_if_compacted : metrics:Metrics.t -> state -> int -> int
  val materialise : metrics:Metrics.t -> state -> int -> state
  val mincost : state -> int
  val free : state -> Varset.t
end

type costs = {
  cost_j_set : Varset.t;
  cost_upto : int;
  cost_table : (Varset.t, int) Hashtbl.t;
  cost_choice : (Varset.t, int) Hashtbl.t;
}

type progress = {
  p_layer : int;
  p_entries : (Varset.t * int * int) array;
}

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let r = ref 1 in
    for i = 1 to k do
      r := !r * (n - k + i) / i
    done;
    !r
  end

module Make (S : COMPACTABLE) = struct
  type t = {
    j_set : Varset.t;
    upto : int;
    mincosts : (Varset.t, int) Hashtbl.t;
    layer : (Varset.t, S.state) Hashtbl.t;
  }

  let validate ~base j_set upto =
    if not (Varset.subset j_set (S.free base)) then
      invalid_arg "Subset_dp.run: J not free in the base state";
    let j_size = Varset.cardinal j_set in
    let upto = match upto with None -> j_size | Some k -> k in
    if upto < 0 || upto > j_size then invalid_arg "Subset_dp.run: bad upto";
    upto

  let subsets_of j_set ~size =
    let acc = ref [] in
    Varset.iter_subsets_of j_set ~size (fun k -> acc := k :: !acc);
    Array.of_list (List.rev !acc)

  (* The two-pass layer step for one subset.  Pass 1 probes every
     candidate [h] for its cost only (Lemma 7 minimisation) — no state,
     no node-table copy.  Pass 2 materialises the single winner, unless
     [skip_state] (the caller will never read this layer's states).
     Ties keep the smallest [h], as the one-pass code did.  The previous
     layer is frozen, so this function is safe on Engine.Par workers. *)
  let eval_subset ~prev ~skip_state metrics ksub =
    let best_h = ref (-1) and best_c = ref max_int in
    Varset.iter
      (fun h ->
        let before = Hashtbl.find prev (Varset.remove h ksub) in
        let c = S.cost_if_compacted ~metrics before h in
        if c < !best_c then begin
          best_c := c;
          best_h := h
        end)
      ksub;
    assert (!best_h >= 0);
    let st =
      if skip_state then None
      else begin
        let before = Hashtbl.find prev (Varset.remove !best_h ksub) in
        let st = S.materialise ~metrics before !best_h in
        assert (S.mincost st = !best_c);
        Some st
      end
    in
    (ksub, !best_h, !best_c, st)

  (* Replaying a subset's recorded choice chain over the base yields a
     state bit-identical to the one the original sweep materialised for
     it: node ids are assigned in scan order, which is a deterministic
     function of the placement sequence alone. *)
  let chain_of choices ksub =
    let rec go k acc =
      if Varset.is_empty k then acc
      else
        let h = Hashtbl.find choices k in
        go (Varset.remove h k) (h :: acc)
    in
    go ksub []

  (* A resume must be a consecutive, complete prefix of layers 1..m with
     every entry a |layer|-subset of J; anything else means the
     checkpoint belongs to a different run.  Returns m (0 when empty). *)
  let validate_resume ~upto j_set resume =
    let j_size = Varset.cardinal j_set in
    let expect = ref 1 in
    List.iter
      (fun p ->
        if p.p_layer <> !expect || p.p_layer > upto then
          invalid_arg
            "Subset_dp.run: resume layers must be consecutive from 1";
        if Array.length p.p_entries <> binomial j_size p.p_layer then
          invalid_arg "Subset_dp.run: resume layer is incomplete";
        Array.iter
          (fun (ksub, _, h) ->
            if
              (not (Varset.subset ksub j_set))
              || Varset.cardinal ksub <> p.p_layer
              || not (Varset.mem h ksub)
            then invalid_arg "Subset_dp.run: resume entry does not match J")
          p.p_entries;
        incr expect)
      resume;
    !expect - 1

  (* One full DP sweep.  [keep_last_states]: materialise and keep the
     states of the final cardinality layer (algorithm FS* proper);
     cost-only callers skip them and backtrack instead.  Intermediate
     layers are always materialised (the next layer's probes need them)
     and dropped eagerly as soon as their successor layer is complete —
     only the integer cost table outlives a layer.

     [on_layer] fires once per completed cardinality layer with that
     layer's (subset, cost, tight choice) triples — the checkpoint hook;
     the same boundaries [cancel] is polled at.  [resume] preloads the
     cost/choice tables from previously completed layers and rebuilds
     the last layer's states by replaying each recorded choice chain, so
     the sweep continues exactly where the checkpointed run stopped and
     stays bit-identical to an uninterrupted one under both engines.

     With a recording tracer, every cardinality layer is one span
     (category "dp") whose args carry the subset count and the layer's
     metrics delta (merged across domains for Engine.Par; the per-domain
     child spans come from Engine.map).  The whole sweep is a parent
     span.  Probes stay untraced — the tracer's granularity floor is a
     layer, so the disabled-tracer cost on the hot path is zero. *)
  let sweep ~trace ~engine ~cancel ~metrics ~upto ~keep_last_states ~on_layer
      ~resume ~base j_set =
    let mincosts = Hashtbl.create 64 in
    let choices = Hashtbl.create 64 in
    Hashtbl.replace mincosts Varset.empty (S.mincost base);
    let start_k = validate_resume ~upto j_set resume + 1 in
    List.iter
      (fun p ->
        Array.iter
          (fun (ksub, c, h) ->
            Hashtbl.replace mincosts ksub c;
            Hashtbl.replace choices ksub h)
          p.p_entries)
      resume;
    let layer = ref (Hashtbl.create 1) in
    if start_k = 1 then Hashtbl.replace !layer Varset.empty base
    else begin
      let m = start_k - 1 in
      (* the resumed layer's states are only needed when the sweep will
         read them: either another layer follows, or the caller keeps
         the final layer (FS* proper) *)
      if m < upto || keep_last_states then
        Trace.with_span trace ~cat:"dp"
          ~args:(fun () ->
            [
              ("k", Ovo_obs.Json.Int m);
              ( "subsets",
                Ovo_obs.Json.Int (binomial (Varset.cardinal j_set) m) );
            ])
          "dp.rebuild"
          (fun () ->
            let tbl = Hashtbl.create 64 in
            Varset.iter_subsets_of j_set ~size:m (fun ksub ->
                let st =
                  List.fold_left
                    (fun st h -> S.materialise ~metrics st h)
                    base (chain_of choices ksub)
                in
                assert (S.mincost st = Hashtbl.find mincosts ksub);
                Hashtbl.replace tbl ksub st);
            layer := tbl)
    end;
    Trace.with_span trace ~cat:"dp"
      ~args:(fun () ->
        [
          ("vars", Ovo_obs.Json.Int (Varset.cardinal j_set));
          ("upto", Ovo_obs.Json.Int upto);
          ("resumed_from", Ovo_obs.Json.Int (start_k - 1));
          ("engine", Ovo_obs.Json.String (Engine.to_string engine));
        ])
      "dp.sweep"
      (fun () ->
        for k = start_k to upto do
          (* cooperative cancellation: a fired token (deadline or explicit)
             aborts the sweep between layers — the finished layers' work
             is discarded and Cancelled propagates to the caller's
             [Cancel.protect] *)
          Cancel.check cancel;
          let prev = !layer in
          let skip_state = k = upto && not keep_last_states in
          let subs = subsets_of j_set ~size:k in
          let before = Metrics.snapshot metrics in
          let results =
            Trace.with_span trace ~cat:"dp"
              ~args:(fun () ->
                ("k", Ovo_obs.Json.Int k)
                :: ("subsets", Ovo_obs.Json.Int (Array.length subs))
                :: ("skip_state", Ovo_obs.Json.Bool skip_state)
                :: Metrics.to_args
                     (Metrics.diff (Metrics.snapshot metrics) before))
              (Printf.sprintf "layer k=%d" k)
              (fun () ->
                Engine.map ~trace ~cancel engine ~metrics
                  (eval_subset ~prev ~skip_state)
                  subs)
          in
          let next = Hashtbl.create (Array.length results * 2) in
          Array.iter
            (fun (ksub, h, c, st) ->
              Hashtbl.replace mincosts ksub c;
              Hashtbl.replace choices ksub h;
              match st with
              | Some st -> Hashtbl.replace next ksub st
              | None -> ())
            results;
          (* eager drop: only [mincosts]/[choices] survive a layer *)
          Hashtbl.reset prev;
          layer := next;
          on_layer
            {
              p_layer = k;
              p_entries =
                Array.map (fun (ksub, h, c, _) -> (ksub, c, h)) results;
            }
        done);
    (mincosts, choices, !layer)

  let run ?(trace = Trace.null) ?(engine = Engine.Seq)
      ?(cancel = Cancel.never) ?(metrics = Metrics.ambient)
      ?(on_layer = fun _ -> ()) ?(resume = []) ?upto ~base j_set =
    let upto = validate ~base j_set upto in
    let mincosts, _, layer =
      sweep ~trace ~engine ~cancel ~metrics ~upto ~keep_last_states:true
        ~on_layer ~resume ~base j_set
    in
    { j_set; upto; mincosts; layer }

  let costs ?(trace = Trace.null) ?(engine = Engine.Seq)
      ?(cancel = Cancel.never) ?(metrics = Metrics.ambient)
      ?(on_layer = fun _ -> ()) ?(resume = []) ?upto ~base j_set =
    let upto = validate ~base j_set upto in
    let mincosts, choices, _ =
      sweep ~trace ~engine ~cancel ~metrics ~upto ~keep_last_states:false
        ~on_layer ~resume ~base j_set
    in
    { cost_j_set = j_set; cost_upto = upto; cost_table = mincosts;
      cost_choice = choices }

  let reconstruct ?(trace = Trace.null) ?(metrics = Metrics.ambient) ~base ct
      target =
    if not (Varset.subset target ct.cost_j_set)
       || Varset.cardinal target > ct.cost_upto
    then invalid_arg "Subset_dp.reconstruct: target not covered";
    (* Backtrack the recorded tight transitions: [cost_choice] holds, for
       every K, the last-placed h of an optimal suborder of K.  Walking
       it from [target] down to the empty set yields the placement
       sequence; replaying it over [base] materialises the optimal state
       in |target| compactions. *)
    let before = Metrics.snapshot metrics in
    let st =
      Trace.with_span trace ~cat:"dp"
        ~args:(fun () ->
          ("placements", Ovo_obs.Json.Int (Varset.cardinal target))
          :: Metrics.to_args (Metrics.diff (Metrics.snapshot metrics) before))
        "dp.reconstruct"
        (fun () ->
          List.fold_left
            (fun st h -> S.materialise ~metrics st h)
            base
            (chain_of ct.cost_choice target))
    in
    assert (S.mincost st = Hashtbl.find ct.cost_table target);
    st

  let state_of t ksub = Hashtbl.find t.layer ksub
  let mincost_of t ksub = Hashtbl.find t.mincosts ksub

  let complete ?(trace = Trace.null) ?(engine = Engine.Seq)
      ?(cancel = Cancel.never) ?(metrics = Metrics.ambient)
      ?(on_layer = fun _ -> ()) ?(resume = []) ~base j_set =
    let ct = costs ~trace ~engine ~cancel ~metrics ~on_layer ~resume ~base j_set in
    reconstruct ~trace ~metrics ~base ct j_set
end

(** Memory accounting and spill control for the out-of-core subset DP.

    The exact Friedman–Supowit sweep is time-bounded by [O*(3^n)] but
    memory-bounded by the [O*(2^n)] cost/choice tables.  A {!t} tracks
    the bytes of every packed cardinality-layer extent
    ({!Layer_pack.Extent}) the DP holds resident and, when a byte budget
    is set, lets the engine spill cold extents through a {!sink} — an
    injected pair of closures, because [ovo.core] must not depend on the
    [ovo.store] layer that implements the on-disk segments.

    Spilling and reloading happen at {e extent} granularity (fixed-size
    rank ranges, {!extent_bytes} of dense payload each), so the k≈n/2
    cardinality hump — the peak of the DP's footprint — can itself
    exceed the budget: the sweep only ever holds the extents it is
    touching, and backtracking reloads exactly the extents its chains
    cross.

    A context without a budget ({!unbounded}) still accounts, which is
    how [--stats json] can report the peak layer bytes an instance
    {e would} need; a context with a budget must carry a sink. *)

type sink = {
  spill : k:int -> ext:int -> string -> unit;
      (** Persist one encoded extent ([ext] is the extent index within
          layer [k]).  Must be durable enough that {!field-reload}
          returns it verbatim. *)
  reload : k:int -> ext:int -> Layer_pack.src;
      (** Return the payload previously spilled for extent [ext] of
          layer [k] — as a string, or as a memory-mapped region the OS
          pages ([--spill-mmap]).  A sink backed by a unified checkpoint
          may return the {e whole layer's} record instead; the decoder
          slices it ({!Layer_pack.Extent.of_src} containment).  Must
          raise [Failure] on a missing or corrupt segment — the DP
          propagates that as a clean error, never a wrong answer. *)
}
(** Where spilled extents go.  Implemented by [Ovo_store.Spill] over
    CRC-framed (or mmap-able CRC-prefixed) segment files and by
    [Ovo_store.Checkpoint.sink] over the checkpoint log; tests inject
    in-memory sinks. *)

type t
(** A mutable per-run accounting context (main-domain only — packing
    happens after the parallel join, so no synchronisation is needed). *)

val default_extent_bytes : int
(** 1 MiB. *)

val create : ?budget_bytes:int -> ?extent_bytes:int -> ?sink:sink -> unit -> t
(** Fresh context.  [extent_bytes] (default {!default_extent_bytes})
    fixes the dense payload size layers are split at.  Raises
    [Invalid_argument] if the budget or extent size is [<= 0] or if a
    budget is given without a sink to spill through. *)

val unbounded : unit -> t
(** Accounting-only context: never spills, still tracks peaks. *)

val budget : t -> int option
(** The configured cap; [None] when unbounded. *)

val extent_bytes : t -> int
(** Dense bytes per extent — layers are split into
    [ceil (count * 9 / extent_bytes)] extents. *)

val sink : t -> sink option
(** The configured spill sink, if any. *)

val over_budget : t -> bool
(** Whether resident bytes currently exceed the budget ([false] when
    unbounded). *)

val resident_bytes : t -> int
(** Bytes of packed extents currently held in memory. *)

val peak_resident_bytes : t -> int
(** High-water mark of {!resident_bytes} over the run.  Under a budget
    this stays within [budget + one extent's charge]: an extent may be
    charged before enforcement evicts, but never more than one. *)

val peak_layer_bytes : t -> int
(** Largest single packed layer seen (summed over its extents) — the
    hump an in-core run must hold resident.  Under extent spilling the
    budget may be far below this. *)

val layers_spilled : t -> int
(** Layers that had at least one extent spilled. *)

val extents_spilled : t -> int
val bytes_spilled : t -> int

val raw_bytes_spilled : t -> int
(** Spill traffic: extents pushed through the sink, encoded bytes
    actually written, and the dense bytes those extents represented —
    [raw / written] is the compression ratio. *)

val compression_ratio : t -> float
(** [raw_bytes_spilled / bytes_spilled]; [1.0] before any spill. *)

val reloads : t -> int

val bytes_reloaded : t -> int
(** Reload traffic: extent fetches pulled back during backtracking and
    their payload bytes. *)

val grew : t -> int -> unit
(** A packed extent of that many bytes became resident. *)

val shrank : t -> int -> unit
(** A resident extent of that many bytes was dropped (spilled or
    freed). *)

val note_layer_bytes : t -> int -> unit
(** Record one completed layer's total packed bytes (for
    {!peak_layer_bytes}). *)

val note_layer_spill : t -> unit
(** Count one layer whose first extent just spilled. *)

val note_spill : t -> raw:int -> stored:int -> unit
(** Count one spilled extent: [raw] dense bytes represented, [stored]
    encoded bytes written. *)

val note_reload : t -> int -> unit
(** Count one reloaded extent of that many payload bytes. *)

val parse_bytes : string -> (int, string) result
(** Parse a CLI byte size: plain bytes or a [k]/[M]/[G] suffix (binary
    multiples, case-insensitive) — ["64k"] is 65536. *)

val to_args : t -> (string * Ovo_obs.Json.t) list
(** The accounting as JSON fields, for span attributes and the ["mem"]
    object of [--stats json]. *)

val to_json_value : t -> Ovo_obs.Json.t
val to_json : t -> string
val pp : Format.formatter -> t -> unit

(** Memory accounting and spill control for the out-of-core subset DP.

    The exact Friedman–Supowit sweep is time-bounded by [O*(3^n)] but
    memory-bounded by the [O*(2^n)] cost/choice tables.  A {!t} tracks
    the bytes of every packed cardinality layer ({!Layer_pack}) the DP
    holds resident and, when a byte budget is set, lets the engine spill
    completed layers through a {!sink} — an injected pair of closures,
    because [ovo.core] must not depend on the [ovo.store] layer that
    implements the on-disk segments.

    A context without a budget ({!unbounded}) still accounts, which is
    how [--stats json] can report the peak layer bytes an instance
    {e would} need; a context with a budget must carry a sink. *)

type sink = {
  spill : k:int -> string -> unit;
      (** Persist the encoded layer of cardinality [k].  Must be
          durable enough that {!field-reload} returns it verbatim. *)
  reload : k:int -> string;
      (** Return the payload previously spilled for layer [k].  Must
          raise [Failure] on a missing or corrupt segment — the DP
          propagates that as a clean error, never a wrong answer. *)
}
(** Where spilled layers go.  Implemented by [Ovo_store.Spill] over the
    CRC-framed record log; tests inject in-memory sinks. *)

type t
(** A mutable per-run accounting context (main-domain only — packing
    happens after the parallel join, so no synchronisation is needed). *)

val create : ?budget_bytes:int -> ?sink:sink -> unit -> t
(** Fresh context.  Raises [Invalid_argument] if the budget is [<= 0]
    or if a budget is given without a sink to spill through. *)

val unbounded : unit -> t
(** Accounting-only context: never spills, still tracks peaks. *)

val budget : t -> int option
(** The configured cap; [None] when unbounded. *)

val sink : t -> sink option
(** The configured spill sink, if any. *)

val over_budget : t -> bool
(** Whether resident bytes currently exceed the budget ([false] when
    unbounded). *)

val resident_bytes : t -> int
(** Bytes of packed layers currently held in memory. *)

val peak_resident_bytes : t -> int
(** High-water mark of {!resident_bytes} over the run. *)

val peak_layer_bytes : t -> int
(** Largest single packed layer seen — the number an instance needs
    resident even under the tightest budget. *)

val layers_spilled : t -> int
val bytes_spilled : t -> int

val reloads : t -> int

val bytes_reloaded : t -> int
(** Spill traffic: layers/bytes pushed through the sink, and reload
    calls/bytes pulled back during backtracking. *)

val grew : t -> int -> unit
(** A packed layer of that many bytes became resident. *)

val shrank : t -> int -> unit
(** A resident layer of that many bytes was dropped (spilled or freed). *)

val note_spill : t -> int -> unit
(** Count one spilled layer of that many bytes. *)

val note_reload : t -> int -> unit
(** Count one reloaded layer of that many bytes. *)

val parse_bytes : string -> (int, string) result
(** Parse a CLI byte size: plain bytes or a [k]/[M]/[G] suffix (binary
    multiples, case-insensitive) — ["64k"] is 65536. *)

val to_args : t -> (string * Ovo_obs.Json.t) list
(** The accounting as JSON fields, for span attributes and the ["mem"]
    object of [--stats json]. *)

val to_json_value : t -> Ovo_obs.Json.t
val to_json : t -> string
val pp : Format.formatter -> t -> unit

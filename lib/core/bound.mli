(** Admissible bounds for branch-and-bound pruning of the exact DP.

    The subset DP of {!Subset_dp} prices every [K ⊆ J] even when a cheap
    heuristic already proves most of them can never be on an optimal
    ordering.  This module is the shared bound vocabulary that turns the
    layer sweep into an exact branch-and-bound:

    - a {!lower} is an {e admissible} lower bound on the cost any
      completion must still add, given the set of currently-free
      variables — the same machinery the A* search in [lib/ordering]
      prunes with, extracted here so core, ordering and quantum layers
      consume one implementation (alongside the {!Bounds} counting
      caps);
    - an {!upper} is an achievable total cost, normally seeded from a
      heuristic orderer (sifting or the portfolio) through an {e
      injected provider} — core never depends on [lib/ordering], the
      caller passes the seed in, mirroring how {!Membudget} injects its
      spill sink;
    - {!t} is the live pruning context of one solve: the lower bound,
      the atomic incumbent shared across {!Engine.Par} worker domains,
      the pruned-state counter and the per-layer incumbent trajectory.

    Soundness: a state is only discarded when
    [cost + remaining free > incumbent].  Any chain realising an optimal
    ordering satisfies [cost + remaining <= optimum <= incumbent] at
    every prefix, so it survives, and the DP's answer — cost {e and}
    reconstructed ordering — is bit-identical to the unpruned sweep
    (ties keep the smallest tight [h] exactly as before, because a
    pruned candidate can never beat the surviving tight one).  A seeded
    incumbent below the true optimum is unsound; it is caught either by
    a fully-pruned layer ({!Pruned_out}) or by {!check_final}. *)

exception Pruned_out of string
(** A cardinality layer lost every state to pruning, or {!check_final}
    failed.  Under a valid seed this cannot happen for a top-level
    solve; the quantum tower catches it for sub-sweeps of globally
    hopeless branches. *)

type lower = {
  lb_source : string;  (** for stats/trace attribution *)
  remaining : Varset.t -> int;
      (** [remaining free] — admissible lower bound on the cost any
          completion adds while the variables in [free] are still
          unplaced.  Must hold for {e every} reachable state with that
          free set, in the objective of the DP instance it is used
          with. *)
  exact_completion : Varset.t -> int option;
      (** [Some c] when the remaining cost of completing {e all} free
          variables is known exactly — then [cost + c] is an achievable
          total and tightens the incumbent mid-sweep (the any-time
          hook).  [None] when unknown. *)
}

type upper = { ub_source : string; ub_value : int }
(** An achievable total cost (a heuristic ordering's evaluated cost). *)

type layer_stat = {
  ls_layer : int;
  ls_kept : int;
  ls_pruned : int;
  ls_lower : int;  (** best [cost + remaining] over kept states — a
                       valid global lower bound after this layer *)
  ls_incumbent : int;  (** incumbent after this layer's updates *)
}

type t

val counting_lower : Compact.kind -> Ovo_boolfun.Mtable.t -> lower
(** The A* heuristic, per kind: every {e relevant} free variable labels
    at least one node in any completed diagram.  [Bdd]: classic support
    (some input pair differing only in the variable changes the value).
    [Zdd]: zero-suppressed liveness (some point with the variable set
    has a non-zero value).  Admissible for the plain node-count
    objective of {!Fs_star} sweeps over [mt], including sub-sweeps over
    partially-assigned bases. *)

val weighted_counting_lower :
  weights:int array -> Compact.kind -> Ovo_boolfun.Mtable.t -> lower
(** As {!counting_lower} for the weighted objective of {!Fs_weighted}:
    each relevant free variable [i] contributes [weights.(i)]. *)

val shared_counting_lower :
  Compact.kind -> Ovo_boolfun.Mtable.t array -> lower
(** As {!counting_lower} for the multi-rooted objective of {!Shared}:
    a variable relevant to any root labels at least one shared node. *)

val make : ?seed:upper -> lower -> t
(** A fresh pruning context; the incumbent starts at the seed's value
    (or infinity without one, in which case only {!exact_completion}
    updates ever tighten it). *)

val incumbent : t -> int
(** Current incumbent ([max_int] when still unbounded). *)

val remaining : t -> Varset.t -> int
(** The context's {!lower.remaining} on a free set. *)

val exact_completion : t -> Varset.t -> int option
(** The context's {!lower.exact_completion} on a free set. *)

val source : t -> string
(** The lower bound's attribution string. *)

val observe : t -> int -> unit
(** Lower the incumbent to an achievable total (atomic monotone min). *)

val note_pruned : t -> int -> unit
val states_pruned : t -> int

val record_layer : t -> layer_stat -> unit
(** Called by the sweep once per completed layer (calling domain only —
    deterministic under Seq and Par alike, because the incumbent is
    only ever updated at layer boundaries). *)

val layer_stats : t -> layer_stat list
(** The incumbent trajectory, first layer first. *)

val best_lower : t -> int
(** Best proven global lower bound so far (0 before the first layer). *)

val anytime : t -> int * int
(** [(best_lower, incumbent)] — the best-so-far bound pair a cancelled
    (deadline-expired) solve can still report. *)

val check_final : t -> int -> unit
(** Sanity check a completed solve: a final cost above the seeded upper
    bound proves the seed was not achievable — raises {!Pruned_out}. *)

val to_args : t -> (string * Ovo_obs.Json.t) list
(** Trace-span args: bound source, states pruned, incumbent, seed. *)

val to_json_value : t -> Ovo_obs.Json.t
(** The [prune] stats block: {!to_args} plus the per-layer
    trajectory. *)

val pp : Format.formatter -> t -> unit

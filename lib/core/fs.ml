type result = {
  mincost : int;
  size : int;
  order : int array;
  widths : int array;
  diagram : Diagram.t;
}

let of_state (st : Compact.state) =
  let diagram = Diagram.of_state st in
  {
    mincost = st.Compact.mincost;
    size = Diagram.size diagram;
    order = Array.of_list (Compact.order st);
    widths = Diagram.level_widths diagram;
    diagram;
  }

let run_mtable ?(trace = Ovo_obs.Trace.null) ?(kind = Compact.Bdd) ?engine
    ?cancel ?metrics ?membudget ?prune ?on_layer ?resume mt =
  let base = Compact.initial kind mt in
  Ovo_obs.Trace.with_span trace ~cat:"fs"
    ~args:(fun () ->
      [ ("n", Ovo_obs.Json.Int (Ovo_boolfun.Mtable.arity mt)) ])
    "fs.run"
    (fun () ->
      let st =
        Fs_star.complete ~trace ?engine ?cancel ?metrics ?membudget ?prune
          ?on_layer ?resume ~base (Compact.free base)
      in
      let r = of_state st in
      (* a pruned solve is exact only under a sound seed; an exact cost
         above the seeded upper bound proves the provider lied *)
      Option.iter (fun b -> Bound.check_final b r.mincost) prune;
      r)

let run ?trace ?kind ?engine ?cancel ?metrics ?membudget ?prune ?on_layer
    ?resume tt =
  run_mtable ?trace ?kind ?engine ?cancel ?metrics ?membudget ?prune ?on_layer
    ?resume
    (Ovo_boolfun.Mtable.of_truthtable tt)

let all_mincosts ?(trace = Ovo_obs.Trace.null) ?(kind = Compact.Bdd) ?engine
    ?cancel ?metrics tt =
  let base = Compact.of_truthtable kind tt in
  Ovo_obs.Trace.with_span trace ~cat:"fs" "fs.all_mincosts" (fun () ->
      let ct =
        Fs_star.costs ~trace ?engine ?cancel ?metrics ~base (Compact.free base)
      in
      ct.Fs_star.cost_table)

let read_first_order r =
  let n = Array.length r.order in
  Array.init n (fun i -> r.order.(n - 1 - i))

(* Path counting over the subset lattice: cnt(I) = sum over h of
   cnt(I∖h) where placing h last is tight.  Candidates are probed with
   the cost-only kernel; only each subset's winner is materialised (the
   next cardinality's probes need its table). *)
let count_optimal_orders ?(kind = Compact.Bdd) tt =
  let n = Ovo_boolfun.Truthtable.arity tt in
  let base = Compact.of_truthtable kind tt in
  let layer = ref (Hashtbl.create 1) in
  Hashtbl.replace !layer Varset.empty base;
  let counts = ref (Hashtbl.create 1) in
  Hashtbl.replace !counts Varset.empty 1.;
  for k = 1 to n do
    let next_layer = Hashtbl.create 64 in
    let next_counts = Hashtbl.create 64 in
    let prev = !layer and prev_counts = !counts in
    Varset.iter_subsets_of_size ~n ~k (fun iset ->
        let best = ref None and ways = ref 0. in
        Varset.iter
          (fun h ->
            let before = Hashtbl.find prev (Varset.remove h iset) in
            let c = Compact.mincost_if_compacted before h in
            let cnt = Hashtbl.find prev_counts (Varset.remove h iset) in
            match !best with
            | Some (bc, _, _) when c > bc -> ()
            | Some (bc, _, _) when c = bc -> ways := !ways +. cnt
            | Some _ | None ->
                best := Some (c, before, h);
                ways := cnt)
          iset;
        match !best with
        | None -> assert false
        | Some (_, before, h) ->
            Hashtbl.replace next_layer iset (Compact.materialise before h);
            Hashtbl.replace next_counts iset !ways);
    Hashtbl.reset prev;
    layer := next_layer;
    counts := next_counts
  done;
  Hashtbl.find !counts (Varset.full n)

(** Multi-rooted (shared) decision diagrams — exact ordering optimisation
    for several functions at once.

    Real designs expose many outputs over the same inputs, represented as
    one shared diagram: a single node store, one root per output, with
    subfunctions common to several outputs stored once.  The paper's
    related work (Tani–Hamaguchi–Yajima [THY96]) studies exactly this
    multi-rooted setting; the FS dynamic program generalises verbatim —
    the only change is that a compaction step scans one table {e per
    root} against a {e shared} [NODE] set, so the objective counts each
    distinct subfunction once no matter how many outputs use it.

    Cost per compaction: [m · 2^(n-|I|-1)] cells for [m] roots — the DP
    remains [O*(m · 3^n)]. *)

type state = private {
  n : int;
  kind : Compact.kind;
  num_terminals : int;
  assigned : Varset.t;
  order_rev : int list;
  tables : int array array;  (** one table per root, indexed alike *)
  node : (int * int * int, int) Hashtbl.t;  (** shared across roots *)
  mincost : int;  (** distinct non-terminal nodes over all roots *)
  next_id : int;
}

val initial : Compact.kind -> Ovo_boolfun.Mtable.t array -> state
(** All tables must have the same arity and value alphabet; at least one
    root is required. *)

val of_truthtables : Compact.kind -> Ovo_boolfun.Truthtable.t array -> state
(** Boolean convenience wrapper. *)

val compact : ?metrics:Metrics.t -> state -> int -> state
(** One table compaction across all roots with a shared node set.
    Charges [table_cells] (one count per root per new cell) and
    [compactions] to [metrics], defaulting to {!Metrics.ambient}. *)

val width_if_compacted : ?metrics:Metrics.t -> state -> int -> int
(** Cost-only kernel: how many fresh shared nodes {!compact} would
    create, across all roots, with no allocation (no new tables, no
    node-table copy, no state).  Charges [table_cells] and
    [cost_probes].  Safe on frozen states from {!Engine.Par} workers. *)

val materialise : ?metrics:Metrics.t -> state -> int -> state
(** Exactly {!compact} but with DP-winner accounting: cells were already
    charged by the probe that elected this candidate, so only
    [states_materialised]/[node_table_copies]/[node_creations] move. *)

val compact_chain : state -> int array -> state

val free : state -> Varset.t
val order : state -> int list
val is_complete : state -> bool

val roots : state -> int array
(** Root ids of a complete state, one per input table. *)

val eval : state -> root:int -> int -> int
(** Evaluate output [root] of a complete state on an assignment code. *)

val check : state -> Ovo_boolfun.Mtable.t array -> bool
(** Semantic equivalence of every root against its table. *)

type result = {
  mincost : int;  (** shared non-terminal count *)
  size : int;  (** plus reachable terminals *)
  order : int array;  (** optimal ordering, read-last first *)
  state : state;  (** the complete optimal state *)
}

val diagrams : state -> Diagram.t array
(** One per-root {!Diagram} view of a complete shared state (node arrays
    are copies; node ids — and hence sharing — are preserved across the
    views).  Enables per-output DOT export, serialisation and checking
    with the ordinary diagram tooling. *)

val of_state : state -> result
(** Package a complete shared state (any provenance) as a result. *)

val minimize :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Compact.kind ->
  ?engine:Engine.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?membudget:Membudget.t ->
  ?prune:Bound.t ->
  Ovo_boolfun.Truthtable.t array ->
  result
(** Exact optimal ordering for the shared diagram (the FS dynamic
    program over shared states): visits all [2^n] subsets, [O*(m·3^n)]
    cells.  [engine]/[cancel]/[metrics] as in {!Fs.run}. *)

val minimize_mtables :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Compact.kind ->
  ?engine:Engine.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?membudget:Membudget.t ->
  ?prune:Bound.t ->
  Ovo_boolfun.Mtable.t array ->
  result

val to_dot : state -> string
(** Graphviz rendering of a complete shared diagram (roots annotated). *)

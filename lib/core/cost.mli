(** Legacy operation accounting — a thin view of {!Metrics.ambient}.

    Historically these counters were free-standing globals; they are now
    backed by the process-global {!Metrics.ambient} context, which the
    counting entry points use when no per-run {!Metrics.t} is passed
    explicitly.  Existing [snapshot]/[diff] measurements around
    sequential runs therefore keep working unchanged.

    New code should prefer an explicit per-run context
    ([Metrics.create ()] threaded through [?metrics]): it is immune to
    cross-run contamination and is the only supported way to account for
    {!Engine.Par} runs (worker domains never write the ambient context —
    their scratches are merged into whatever context the run was given).

    The unit of [table_cells] is unchanged: one cell of a [TABLE]
    processed while evaluating a candidate compaction — the quantity the
    paper's Theorems 5/10/13 price. *)

type snapshot = {
  table_cells : int;  (** cells processed evaluating candidates *)
  compactions : int;  (** stand-alone {!Compact.compact} steps *)
  node_creations : int;  (** fresh diagram nodes allocated *)
}

val reset : unit -> unit
(** Zero all counters of {!Metrics.ambient}. *)

val snapshot : unit -> snapshot
(** Current ambient counter values. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-field difference. *)

val add_cells : int -> unit
val add_compaction : unit -> unit
val add_node : unit -> unit
(** Incrementors (ambient context). *)

val pp : Format.formatter -> snapshot -> unit

type t = {
  mutable table_cells : int;
  mutable cost_probes : int;
  mutable compactions : int;
  mutable node_creations : int;
  mutable states_materialised : int;
  mutable node_table_copies : int;
}

type snapshot = {
  s_table_cells : int;
  s_cost_probes : int;
  s_compactions : int;
  s_node_creations : int;
  s_states_materialised : int;
  s_node_table_copies : int;
}

let create () =
  {
    table_cells = 0;
    cost_probes = 0;
    compactions = 0;
    node_creations = 0;
    states_materialised = 0;
    node_table_copies = 0;
  }

let reset m =
  m.table_cells <- 0;
  m.cost_probes <- 0;
  m.compactions <- 0;
  m.node_creations <- 0;
  m.states_materialised <- 0;
  m.node_table_copies <- 0

let snapshot m =
  {
    s_table_cells = m.table_cells;
    s_cost_probes = m.cost_probes;
    s_compactions = m.compactions;
    s_node_creations = m.node_creations;
    s_states_materialised = m.states_materialised;
    s_node_table_copies = m.node_table_copies;
  }

let diff a b =
  {
    s_table_cells = a.s_table_cells - b.s_table_cells;
    s_cost_probes = a.s_cost_probes - b.s_cost_probes;
    s_compactions = a.s_compactions - b.s_compactions;
    s_node_creations = a.s_node_creations - b.s_node_creations;
    s_states_materialised = a.s_states_materialised - b.s_states_materialised;
    s_node_table_copies = a.s_node_table_copies - b.s_node_table_copies;
  }

let merge_into ~into m =
  into.table_cells <- into.table_cells + m.table_cells;
  into.cost_probes <- into.cost_probes + m.cost_probes;
  into.compactions <- into.compactions + m.compactions;
  into.node_creations <- into.node_creations + m.node_creations;
  into.states_materialised <- into.states_materialised + m.states_materialised;
  into.node_table_copies <- into.node_table_copies + m.node_table_copies

let add_cells m n = m.table_cells <- m.table_cells + n
let add_probe m = m.cost_probes <- m.cost_probes + 1
let add_compaction m = m.compactions <- m.compactions + 1
let add_node m = m.node_creations <- m.node_creations + 1
let add_state m = m.states_materialised <- m.states_materialised + 1
let add_copy m = m.node_table_copies <- m.node_table_copies + 1

(* The process-global context backing the legacy {!Cost} API and the
   default of the counting entry points.  Only ever written from the
   domain that runs the DP main loop (worker domains count into scratch
   contexts that are merged after the join), so it stays race-free. *)
let ambient = create ()

let pp ppf s =
  Format.fprintf ppf
    "cells=%d probes=%d compactions=%d nodes=%d states=%d copies=%d"
    s.s_table_cells s.s_cost_probes s.s_compactions s.s_node_creations
    s.s_states_materialised s.s_node_table_copies

(* JSON goes through the shared ovo_obs emitter — the single source of
   truth for formatting/escaping — so [--stats json], trace span
   attributes and the bench files all agree on one schema. *)
let to_args s =
  Ovo_obs.Json.
    [
      ("table_cells", Int s.s_table_cells);
      ("cost_probes", Int s.s_cost_probes);
      ("compactions", Int s.s_compactions);
      ("node_creations", Int s.s_node_creations);
      ("states_materialised", Int s.s_states_materialised);
      ("node_table_copies", Int s.s_node_table_copies);
    ]

let to_json_value s = Ovo_obs.Json.Obj (to_args s)
let to_json s = Ovo_obs.Json.to_string (to_json_value s)

let of_json_value j =
  let field name =
    match Ovo_obs.Json.member name j with
    | Some (Ovo_obs.Json.Int i) -> Some i
    | _ -> None
  in
  match
    ( field "table_cells",
      field "cost_probes",
      field "compactions",
      field "node_creations",
      field "states_materialised",
      field "node_table_copies" )
  with
  | Some c, Some p, Some k, Some n, Some s, Some y ->
      Some
        {
          s_table_cells = c;
          s_cost_probes = p;
          s_compactions = k;
          s_node_creations = n;
          s_states_materialised = s;
          s_node_table_copies = y;
        }
  | _ -> None

let of_json text =
  match Ovo_obs.Json.parse text with
  | Ok j -> of_json_value j
  | Error _ -> None

(** Cooperative cancellation tokens for the dynamic programs.

    A {!t} is a cheap, domain-safe token polled by long-running sweeps —
    the DP layer loop of {!Subset_dp} checks it between cardinality
    layers, so a cancelled (or deadline-expired) run aborts after the
    current layer instead of running the remaining [O*(3^n)] work to
    completion.  Cancellation has two sources, combined in one token:

    - an explicit {!cancel} call (e.g. a client disconnecting, a server
      shutting down), observed through an [Atomic.t] so any domain or
      thread may fire it;
    - an optional monotonic-clock deadline, polled lazily — no timer
      thread exists anywhere.

    The polling side raises the {!Cancelled} exception from {!check};
    callers that want a typed result wrap the computation in {!protect},
    which converts the exception into [Error `Cancelled] without ever
    letting it escape a worker. *)

type t

exception Cancelled
(** Raised by {!check} on a fired token.  Never escapes {!protect}. *)

val never : t
(** The inert token: {!is_cancelled} is always [false].  This is the
    default everywhere a [?cancel] parameter appears, so un-cancellable
    runs pay one atomic load per layer and nothing else. *)

val make : unit -> t
(** A token fired only by an explicit {!cancel}. *)

val with_deadline : ?clock:(unit -> float) -> float -> t
(** [with_deadline seconds] fires once [clock ()] passes
    [clock () + seconds] (evaluated now); [clock] defaults to
    {!Ovo_obs.Trace.monotonic}.  Negative or zero [seconds] yields a
    token that is already expired.  An explicit {!cancel} still works. *)

val cancel : t -> unit
(** Fire the token.  Idempotent; safe from any domain or thread. *)

val is_cancelled : t -> bool
(** [true] once the token has been fired or its deadline has passed. *)

val check : t -> unit
(** Raise {!Cancelled} iff {!is_cancelled}. *)

val protect : t -> (unit -> 'a) -> ('a, [ `Cancelled ]) result
(** [protect t f] runs [f], mapping a {!Cancelled} raised by [f] (from
    any {!check} on any token) to [Error `Cancelled] — the typed result
    a worker hands back instead of letting the exception cross its
    boundary. *)

type state = {
  n : int;
  kind : Compact.kind;
  num_terminals : int;
  assigned : Varset.t;
  order_rev : int list;
  tables : int array array;
  node : (int * int * int, int) Hashtbl.t;
  mincost : int;
  next_id : int;
}

let initial kind mts =
  let m = Array.length mts in
  if m = 0 then invalid_arg "Shared.initial: need at least one root";
  let n = Ovo_boolfun.Mtable.arity mts.(0) in
  let num_terminals = Ovo_boolfun.Mtable.num_values mts.(0) in
  Array.iter
    (fun mt ->
      if Ovo_boolfun.Mtable.arity mt <> n then
        invalid_arg "Shared.initial: arity mismatch";
      if Ovo_boolfun.Mtable.num_values mt <> num_terminals then
        invalid_arg "Shared.initial: value alphabet mismatch")
    mts;
  {
    n;
    kind;
    num_terminals;
    assigned = Varset.empty;
    order_rev = [];
    tables =
      Array.map (fun mt -> Array.init (1 lsl n) (Ovo_boolfun.Mtable.eval mt)) mts;
    node = Hashtbl.create 16;
    mincost = 0;
    next_id = num_terminals;
  }

let of_truthtables kind tts =
  initial kind (Array.map Ovo_boolfun.Mtable.of_truthtable tts)

let check_var name st i =
  if i < 0 || i >= st.n then
    invalid_arg (Printf.sprintf "Shared.%s: variable out of range" name);
  if Varset.mem i st.assigned then
    invalid_arg (Printf.sprintf "Shared.%s: variable already assigned" name)

(* One compaction across every root's table; the node set — and hence the
   objective — is shared, so a subfunction used by several outputs is
   created and counted once.  [charge] selects the accounting: `Direct
   prices the scan as the theorems do (cells + a compaction); `Materialise
   records only the DP-winner counters, the probe that elected it having
   already paid for the cells. *)
let compact_gen ~charge ~metrics st i =
  let freeset = Varset.diff (Varset.full st.n) st.assigned in
  let p = Varset.rank_in i freeset in
  let old_len = Array.length st.tables.(0) in
  let new_len = old_len / 2 in
  let node = Hashtbl.copy st.node in
  let mincost = ref st.mincost in
  let next_id = ref st.next_id in
  let low_mask = (1 lsl p) - 1 in
  let compact_table table =
    let out = Array.make (max new_len 1) 0 in
    for b = 0 to new_len - 1 do
      let idx0 = ((b lsr p) lsl (p + 1)) lor (b land low_mask) in
      let lo = table.(idx0) in
      let hi = table.(idx0 lor (1 lsl p)) in
      let elided = match st.kind with Compact.Bdd -> lo = hi | Compact.Zdd -> hi = 0 in
      if elided then out.(b) <- lo
      else
        let key = (i, lo, hi) in
        match Hashtbl.find_opt node key with
        | Some u -> out.(b) <- u
        | None ->
            let u = !next_id in
            incr next_id;
            incr mincost;
            Metrics.add_node metrics;
            Hashtbl.add node key u;
            out.(b) <- u
    done;
    out
  in
  let tables = Array.map compact_table st.tables in
  Metrics.add_copy metrics;
  (match charge with
  | `Direct ->
      Metrics.add_cells metrics (new_len * Array.length st.tables);
      Metrics.add_compaction metrics
  | `Materialise -> Metrics.add_state metrics);
  {
    st with
    assigned = Varset.add i st.assigned;
    order_rev = i :: st.order_rev;
    tables;
    node;
    mincost = !mincost;
    next_id = !next_id;
  }

let compact ?(metrics = Metrics.ambient) st i =
  check_var "compact" st i;
  compact_gen ~charge:`Direct ~metrics st i

let materialise ?(metrics = Metrics.ambient) st i =
  check_var "materialise" st i;
  compact_gen ~charge:`Materialise ~metrics st i

(* Cost-only kernel: how many fresh shared nodes a compaction on [i]
   would create, across all roots, with no allocation.  As in
   {!Compact.width_if_compacted}, no key [(i, _, _)] can pre-exist in
   [st.node] because [i] is unassigned, so it suffices to count distinct
   non-elided [(lo, hi)] pairs over every table's scan. *)
let width_if_compacted ?(metrics = Metrics.ambient) st i =
  check_var "width_if_compacted" st i;
  let freeset = Varset.diff (Varset.full st.n) st.assigned in
  let p = Varset.rank_in i freeset in
  let old_len = Array.length st.tables.(0) in
  let new_len = old_len / 2 in
  let low_mask = (1 lsl p) - 1 in
  let seen = Hashtbl.create 64 in
  let fresh = ref 0 in
  Array.iter
    (fun table ->
      for b = 0 to new_len - 1 do
        let idx0 = ((b lsr p) lsl (p + 1)) lor (b land low_mask) in
        let lo = table.(idx0) in
        let hi = table.(idx0 lor (1 lsl p)) in
        let elided =
          match st.kind with Compact.Bdd -> lo = hi | Compact.Zdd -> hi = 0
        in
        if (not elided) && not (Hashtbl.mem seen (lo, hi)) then begin
          Hashtbl.add seen (lo, hi) ();
          incr fresh
        end
      done)
    st.tables;
  Metrics.add_cells metrics (new_len * Array.length st.tables);
  Metrics.add_probe metrics;
  !fresh

let compact_chain st vars =
  Array.fold_left (fun st i -> compact st i) st vars

let free st = Varset.diff (Varset.full st.n) st.assigned
let order st = List.rev st.order_rev
let is_complete st = st.assigned = Varset.full st.n

let roots st =
  if not (is_complete st) then invalid_arg "Shared.roots: state not complete";
  Array.map (fun table -> table.(0)) st.tables

(* As Diagram.eval, against the shared node store. *)
let eval st ~root code =
  if not (is_complete st) then invalid_arg "Shared.eval: state not complete";
  if root < 0 || root >= Array.length st.tables then invalid_arg "Shared.eval";
  let nodes = Array.make (st.next_id - st.num_terminals) (-1, 0, 0) in
  Hashtbl.iter
    (fun (var, lo, hi) id -> nodes.(id - st.num_terminals) <- (var, lo, hi))
    st.node;
  let order = Array.of_list (order st) in
  let cur = ref st.tables.(root).(0) in
  let dead = ref false in
  for level = st.n - 1 downto 0 do
    let v = order.(level) in
    let bit = code land (1 lsl v) <> 0 in
    if not !dead then
      if !cur < st.num_terminals then begin
        match st.kind with
        | Compact.Bdd -> ()
        | Compact.Zdd -> if bit then dead := true
      end
      else
        let var, lo, hi = nodes.(!cur - st.num_terminals) in
        if var = v then cur := (if bit then hi else lo)
        else begin
          match st.kind with
          | Compact.Bdd -> ()
          | Compact.Zdd -> if bit then dead := true
        end
  done;
  if !dead then 0 else !cur

let check st mts =
  Array.length mts = Array.length st.tables
  && Array.for_all (fun mt -> Ovo_boolfun.Mtable.arity mt = st.n) mts
  &&
  let ok = ref true in
  Array.iteri
    (fun root mt ->
      for code = 0 to (1 lsl st.n) - 1 do
        if eval st ~root code <> Ovo_boolfun.Mtable.eval mt code then ok := false
      done)
    mts;
  !ok

module Dp = Subset_dp.Make (struct
  type nonrec state = state

  let cost_if_compacted ~metrics st h =
    st.mincost + width_if_compacted ~metrics st h

  let materialise ~metrics st h = materialise ~metrics st h
  let mincost st = st.mincost
  let free = free
end)

type result = { mincost : int; size : int; order : int array; state : state }

let reachable_terminals st =
  let seen = Array.make st.num_terminals false in
  Array.iter
    (fun table -> if table.(0) < st.num_terminals then seen.(table.(0)) <- true)
    st.tables;
  Hashtbl.iter
    (fun (_, lo, hi) _ ->
      if lo < st.num_terminals then seen.(lo) <- true;
      if hi < st.num_terminals then seen.(hi) <- true)
    st.node;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

let diagrams st =
  if not (is_complete st) then invalid_arg "Shared.diagrams: state not complete";
  let count = st.next_id - st.num_terminals in
  let nodes =
    Array.make count { Diagram.var = -1; Diagram.lo = 0; Diagram.hi = 0 }
  in
  Hashtbl.iter
    (fun (var, lo, hi) id ->
      nodes.(id - st.num_terminals) <- { Diagram.var; lo; hi })
    st.node;
  let order = Array.of_list (order st) in
  Array.map
    (fun table ->
      Diagram.of_parts ~kind:st.kind ~n:st.n ~num_terminals:st.num_terminals
        ~order ~nodes ~root:table.(0))
    st.tables

let of_state st =
  if not (is_complete st) then invalid_arg "Shared.of_state: state not complete";
  {
    mincost = st.mincost;
    size = st.mincost + reachable_terminals st;
    order = Array.of_list (order st);
    state = st;
  }

let minimize_mtables ?(trace = Ovo_obs.Trace.null) ?(kind = Compact.Bdd)
    ?engine ?cancel ?metrics ?membudget ?prune mts =
  let base = initial kind mts in
  Ovo_obs.Trace.with_span trace ~cat:"fs"
    ~args:(fun () ->
      [
        ("n", Ovo_obs.Json.Int base.n);
        ("roots", Ovo_obs.Json.Int (Array.length mts));
      ])
    "shared.minimize"
    (fun () ->
      let r =
        of_state
          (Dp.complete ~trace ?engine ?cancel ?metrics ?membudget ?prune ~base
             (free base))
      in
      Option.iter (fun b -> Bound.check_final b r.mincost) prune;
      r)

let minimize ?trace ?kind ?engine ?cancel ?metrics ?membudget ?prune tts =
  minimize_mtables ?trace ?kind ?engine ?cancel ?metrics ?membudget ?prune
    (Array.map Ovo_boolfun.Mtable.of_truthtable tts)

let to_dot st =
  if not (is_complete st) then invalid_arg "Shared.to_dot: state not complete";
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph shared {\n  rankdir=TB;\n";
  for t = 0 to st.num_terminals - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [shape=box,label=\"%d\"];\n" t t)
  done;
  Hashtbl.iter
    (fun (var, lo, hi) id ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=circle,label=\"x%d\"];\n" id var);
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [style=dashed];\n" id lo);
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id hi))
    st.node;
  Array.iteri
    (fun i table ->
      Buffer.add_string buf
        (Printf.sprintf "  r%d [shape=plaintext,label=\"f%d\"];\n" i i);
      Buffer.add_string buf (Printf.sprintf "  r%d -> n%d;\n" i table.(0)))
    st.tables;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Per-run operation accounting — the replacement for the global
    counters of {!Cost}.

    A {!t} is a mutable context owned by one run of a dynamic program (or
    by one worker domain of a parallel run; see {!Engine}).  The core
    algorithms take the context explicitly, so concurrent runs — or the
    per-layer worker domains of {!Engine.Par} — never contaminate each
    other: each domain counts into its own scratch context and the engine
    {!merge_into}s the scratches after the join.

    Counter discipline (chosen so that [table_cells] keeps the exact
    meaning the complexity theorems price — one unit per table cell
    processed while {e evaluating a candidate}):

    - {!Compact.compact} (a direct, stand-alone compaction): charges
      [table_cells], [compactions], [node_creations], [node_table_copies].
    - {!Compact.width_if_compacted} (the allocation-free cost probe):
      charges [table_cells] and [cost_probes] — a probe does the same
      cell scan a compaction would, it just materialises nothing.
    - {!Compact.materialise} (building the already-costed winner inside
      the DP): charges [states_materialised], [node_table_copies] and
      [node_creations] but {e not} [table_cells] — its cells were already
      charged by the probe that elected it.

    With this discipline the measured [table_cells] of a full {!Fs.run}
    is exactly the paper's [n·3^(n-1)] (Theorem 5), as before the
    two-pass refactor, while the new counters expose what the refactor
    eliminated: [node_table_copies] now equals the number of winners
    materialised instead of the number of candidates tried. *)

type t = private {
  mutable table_cells : int;
      (** cells scanned during candidate evaluation (probe or compact) *)
  mutable cost_probes : int;  (** allocation-free cost probes *)
  mutable compactions : int;  (** stand-alone {!Compact.compact} steps *)
  mutable node_creations : int;  (** fresh diagram nodes allocated *)
  mutable states_materialised : int;  (** winner states built by the DP *)
  mutable node_table_copies : int;  (** [NODE] hashtable copies taken *)
}

type snapshot = {
  s_table_cells : int;
  s_cost_probes : int;
  s_compactions : int;
  s_node_creations : int;
  s_states_materialised : int;
  s_node_table_copies : int;
}
(** An immutable copy of the counters, for before/after arithmetic. *)

val create : unit -> t
(** A fresh context with all counters at zero. *)

val reset : t -> unit
(** Zero every counter in place. *)

val snapshot : t -> snapshot
(** An immutable copy of the current counter values. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-field difference. *)

val merge_into : into:t -> t -> unit
(** Add every counter of the second context into [into].  Used by
    {!Engine} to fold worker-domain scratches into the run's context. *)

val add_cells : t -> int -> unit
val add_probe : t -> unit
val add_compaction : t -> unit
val add_node : t -> unit
val add_state : t -> unit
val add_copy : t -> unit
(** Incrementors used by the core algorithms. *)

val ambient : t
(** The process-global context behind the deprecated {!Cost} API; it is
    also the default context of the counting entry points, so legacy
    [Cost.snapshot]-diff measurements keep working.  Written only by the
    calling domain, never from {!Engine.Par} workers. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable one-liner, for [--stats text]. *)

val to_args : snapshot -> (string * Ovo_obs.Json.t) list
(** The counters as JSON fields — span attributes for the tracer, and
    the body of {!to_json_value}. *)

val to_json_value : snapshot -> Ovo_obs.Json.t
(** {!to_args} wrapped as a JSON object value. *)

val to_json : snapshot -> string
(** One-line JSON object, for [--stats json] and the bench harness.
    Emitted through the shared {!Ovo_obs.Json} emitter; inverse
    {!of_json}. *)

val of_json_value : Ovo_obs.Json.t -> snapshot option
(** Parse a {!to_json_value} object; [None] on mismatch. *)

val of_json : string -> snapshot option
(** Parse {!to_json} output back; [None] on malformed or incomplete
    input. *)

(** Subsets of the variable index set [{0, …, n-1}] as bitmasks.

    The dynamic programs in this repository are indexed by variable
    subsets (the paper's [I], [J], [K] ⊆ [n]); this module fixes the
    encoding — bit [i] set iff variable [i] is in the set — and provides
    the enumeration loops they need, in particular constant-amortised-time
    enumeration of all [k]-element subsets (Gosper's hack). *)

type t = int
(** A subset as a bitmask.  Usable with up to [Sys.int_size - 1]
    variables, far beyond what any [2^n] table allows anyway. *)

val empty : t
(** The empty set. *)

val full : int -> t
(** [full n] is [{0, …, n-1}]. *)

val mem : int -> t -> bool
(** Membership. *)

val add : int -> t -> t
(** [add i s] is [s ∪ {i}]. *)

val remove : int -> t -> t
(** [remove i s] is [s \ {i}]. *)

val singleton : int -> t
(** [singleton i] is [{i}]. *)

val union : t -> t -> t
(** Set union. *)

val inter : t -> t -> t
(** Set intersection. *)

val diff : t -> t -> t
(** [diff a b] is [a \ b]. *)

val subset : t -> t -> bool
(** [subset a b] iff [a ⊆ b]. *)

val disjoint : t -> t -> bool
(** [disjoint a b] iff [a ∩ b = ∅]. *)

val cardinal : t -> int
(** Number of elements (population count). *)

val is_empty : t -> bool
(** [is_empty s] iff [s = ∅]. *)

val elements : t -> int list
(** Ascending. *)

val of_list : int list -> t
(** Set of the listed indices (duplicates collapse). *)

val min_elt : t -> int
(** Smallest element; raises [Not_found] on the empty set. *)

val iter : (int -> unit) -> t -> unit
(** Ascending order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending order. *)

val rank_in : int -> t -> int
(** [rank_in i s] is the number of elements of [s] strictly below [i]
    ([i] need not be a member). *)

val iter_subsets_of_size : n:int -> k:int -> (t -> unit) -> unit
(** Enumerates every [k]-element subset of [{0,…,n-1}] exactly once, in
    increasing bitmask order (Gosper's hack). *)

val subsets_of_size : n:int -> k:int -> t list
(** Materialised version of {!iter_subsets_of_size}. *)

val iter_subsets_of : t -> size:int -> (t -> unit) -> unit
(** Enumerates the [size]-element subsets of an arbitrary set. *)

val pp : Format.formatter -> t -> unit
(** Renders as [{0,3,5}]. *)

let log_src = Logs.Src.create "ovo.core.fs" ~doc:"Friedman-Supowit DP"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Dp = Subset_dp.Make (struct
  type state = Compact.state

  let cost_if_compacted ~metrics (st : Compact.state) h =
    st.Compact.mincost + Compact.width_if_compacted ~metrics st h

  let materialise ~metrics st h = Compact.materialise ~metrics st h
  let mincost (st : Compact.state) = st.Compact.mincost
  let free = Compact.free
end)

type t = {
  base_assigned : Varset.t;
  j_set : Varset.t;
  upto : int;
  mincosts : (Varset.t, int) Hashtbl.t;
  layer : (Varset.t, Compact.state) Hashtbl.t;
}

type costs = Subset_dp.costs = {
  cost_j_set : Varset.t;
  cost_upto : int;
  cost_table : (Varset.t, int) Hashtbl.t;
  cost_choice : (Varset.t, int) Hashtbl.t;
}

(* keep the module's historical error messages *)
let rebrand f =
  try f ()
  with Invalid_argument m when String.length m > 9
                              && String.sub m 0 9 = "Subset_dp" ->
    invalid_arg ("Fs_star" ^ String.sub m 9 (String.length m - 9))

let run ?trace ?engine ?cancel ?metrics ?membudget ?prune ?on_layer ?resume
    ?upto ~(base : Compact.state) j_set =
  let d =
    rebrand (fun () ->
        Dp.run ?trace ?engine ?cancel ?metrics ?membudget ?prune ?on_layer
          ?resume ?upto ~base j_set)
  in
  Log.debug (fun m ->
      m "FS* over %a from |I|=%d: %d subsets summarised, layer of %d states"
        Varset.pp j_set
        (Varset.cardinal base.Compact.assigned)
        (Hashtbl.length d.Dp.mincosts)
        (Hashtbl.length d.Dp.layer));
  {
    base_assigned = base.Compact.assigned;
    j_set = d.Dp.j_set;
    upto = d.Dp.upto;
    mincosts = d.Dp.mincosts;
    layer = d.Dp.layer;
  }

let costs ?trace ?engine ?cancel ?metrics ?membudget ?prune ?on_layer ?resume
    ?upto ~(base : Compact.state) j_set =
  rebrand (fun () ->
      Dp.costs ?trace ?engine ?cancel ?metrics ?membudget ?prune ?on_layer
        ?resume ?upto ~base j_set)

let reconstruct ?trace ?metrics ~base ct target =
  rebrand (fun () -> Dp.reconstruct ?trace ?metrics ~base ct target)

let state_of t ksub = Hashtbl.find t.layer ksub

let mincost_of t ksub = Hashtbl.find t.mincosts ksub

let complete ?trace ?engine ?cancel ?metrics ?membudget ?prune ?on_layer
    ?resume ~base j_set =
  rebrand (fun () ->
      Dp.complete ?trace ?engine ?cancel ?metrics ?membudget ?prune ?on_layer
        ?resume ~base j_set)

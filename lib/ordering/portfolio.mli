(** Portfolio search: run every heuristic, keep the best.

    No single heuristic dominates (the quality benches show each losing
    somewhere); a portfolio at roughly the summed probe budget is the
    practical default when the exact DP is out of reach. *)

type entry = {
  method_name : string;
  mincost : int;
  order : int array;
}

type result = {
  best : entry;
  entries : entry list;  (** every member, best first *)
}

val run :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?rng:Random.State.t ->
  ?extra:(string * (Ovo_boolfun.Truthtable.t -> entry)) list ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Members: influence (static), sifting, window permutation, simulated
    annealing, genetic, random search, and the exact-block hybrid.  The
    RNG defaults to a fixed seed for reproducibility.

    [extra] prepends injected members (name, solver), each wrapped in
    the same [portfolio.<name>] span — how layers above register the
    [ovo.learn] scorer without this library depending on it (the same
    inversion {!Seed} uses toward the core). *)

(** Heuristic-seeded pruning contexts — the injected bound provider.

    The branch-and-bound DP in [lib/core] consumes a {!Ovo_core.Bound.t}
    but must not depend on this library (core sits below ordering), so
    callers that want a heuristic-seeded incumbent build it here and
    pass it down: sifting (or the portfolio) supplies an achievable
    upper bound, {!Ovo_core.Bound} supplies the matching admissible
    lower bound, and the solve stays exact while skipping every state
    the pair proves hopeless. *)

val sifting_upper :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?max_passes:int ->
  Ovo_boolfun.Truthtable.t ->
  Ovo_core.Bound.upper
(** The cost of the sifting ordering — cheap ([O(n² 2^n)] per pass
    against the exact DP's [O*(3^n)]) and usually close to optimal. *)

val sifting_upper_mtable :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?max_passes:int ->
  Ovo_boolfun.Mtable.t ->
  Ovo_core.Bound.upper

val portfolio_upper :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?rng:Random.State.t ->
  ?extra:(string * (Ovo_boolfun.Truthtable.t -> Portfolio.entry)) list ->
  Ovo_boolfun.Truthtable.t ->
  Ovo_core.Bound.upper
(** The best cost across the whole heuristic portfolio — tighter than
    {!sifting_upper} but costlier to compute.  [extra] is passed through
    to {!Portfolio.run}. *)

val bound :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?portfolio:bool ->
  ?rng:Random.State.t ->
  Ovo_boolfun.Truthtable.t ->
  Ovo_core.Bound.t
(** A ready pruning context for {!Ovo_core.Fs.run}: counting lower
    bound plus a sifting seed ([portfolio:true] seeds from
    {!portfolio_upper} instead). *)

val bound_mtable :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?max_passes:int ->
  Ovo_boolfun.Mtable.t ->
  Ovo_core.Bound.t

val weighted_bound :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  weights:int array ->
  Ovo_boolfun.Mtable.t ->
  Ovo_core.Bound.t
(** For {!Ovo_core.Fs_weighted}: the sifting order re-priced under the
    weighted objective (both directions, cheaper one kept) seeds the
    weighted counting bound. *)

val shared_bound :
  ?kind:Ovo_core.Compact.kind ->
  Ovo_boolfun.Mtable.t array ->
  Ovo_core.Bound.t
(** For {!Ovo_core.Shared}: the identity placement's shared cost seeds
    the multi-rooted counting bound. *)

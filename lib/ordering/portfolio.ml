type entry = { method_name : string; mincost : int; order : int array }

type result = { best : entry; entries : entry list }

let run ?(trace = Ovo_obs.Trace.null) ?(kind = Ovo_core.Compact.Bdd) ?rng
    ?(extra = []) tt =
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0x0BDD |] in
  (* each member gets its own span so the profile shows where portfolio
     time goes; sifting and window additionally thread the tracer down
     for their improvement instants *)
  let member name f =
    let entry = ref None in
    Ovo_obs.Trace.with_span trace ~cat:"heur"
      ~args:(fun () ->
        match !entry with
        | None -> [ ("method", Ovo_obs.Json.String name) ]
        | Some e ->
            [
              ("method", Ovo_obs.Json.String name);
              ("mincost", Ovo_obs.Json.Int e.mincost);
            ])
      (Printf.sprintf "portfolio.%s" name)
      (fun () ->
        let e = f () in
        entry := Some e;
        e)
  in
  let members =
    (* injected members run first: they are the cheap static ones
       (layers above register the learn scorer here without ordering
       ever depending on it) *)
    List.map (fun (name, f) -> member name (fun () -> f tt)) extra
    @ [
      member "influence" (fun () ->
          let r = Influence.run ~kind tt in
          { method_name = "influence"; mincost = r.Influence.mincost; order = r.Influence.order });
      member "sifting" (fun () ->
          let r = Sifting.run ~trace ~kind tt in
          { method_name = "sifting"; mincost = r.Sifting.mincost; order = r.Sifting.order });
      member "window" (fun () ->
          let r = Window.run ~trace ~kind tt in
          { method_name = "window"; mincost = r.Window.mincost; order = r.Window.order });
      member "annealing" (fun () ->
          let r = Annealing.run ~kind ~rng tt in
          { method_name = "annealing"; mincost = r.Annealing.mincost; order = r.Annealing.order });
      member "genetic" (fun () ->
          let r = Genetic.run ~kind ~rng tt in
          { method_name = "genetic"; mincost = r.Genetic.mincost; order = r.Genetic.order });
      member "random" (fun () ->
          let r = Random_search.run ~kind ~rng tt in
          { method_name = "random"; mincost = r.Random_search.mincost; order = r.Random_search.order });
      member "exact-block" (fun () ->
          let r = Exact_block.run ~kind tt in
          { method_name = "exact-block"; mincost = r.Exact_block.mincost; order = r.Exact_block.order });
    ]
  in
  let sorted =
    List.sort (fun a b -> compare a.mincost b.mincost) members
  in
  match sorted with
  | [] -> assert false
  | best :: _ -> { best; entries = sorted }

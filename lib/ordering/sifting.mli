(** Rudell-style sifting, the dominant practical reordering heuristic.

    Each variable in turn (largest level first) is moved through every
    position while the others keep their relative order; it is left at
    the best position found.  Passes repeat until no pass improves the
    size or [max_passes] is reached.

    Positions are evaluated with a full compaction chain ([O(2^n)] per
    probe) rather than by adjacent in-place swaps: for the truth-table
    scale this repository targets ([n ≲ 14]) this is simpler, exactly as
    accurate, and still polynomially cheaper per probe than exact
    optimisation.  One pass costs [O(n² · 2^n)] cells.

    Sifting is a {e heuristic}: it has no worst-case guarantee (the
    paper's motivation for exact methods) and the tests include functions
    where it lands above the FS optimum. *)

type result = {
  mincost : int;
  order : int array;
  passes : int;  (** passes executed (including the final no-change one) *)
  probes : int;  (** orderings evaluated *)
}

val run :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?max_passes:int ->
  ?initial:int array ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Default [max_passes] 8, default initial ordering the identity. *)

val run_mtable :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?max_passes:int ->
  ?initial:int array ->
  Ovo_boolfun.Mtable.t ->
  result

module C = Ovo_core.Compact
module V = Ovo_core.Varset

type result = {
  mincost : int;
  order : int array;
  expanded : int;
  generated : int;
  subsets_total : int;
}

(* Open list: a sorted set of (f, -g, mask) triples — on equal f the
   deeper node (larger g, i.e. more variables placed) pops first, which
   makes the search dive straight through zero-cost plateaus (variables
   outside the support).  The mask makes entries unique; stale entries
   (superseded g for the same mask) are skipped on pop. *)
module Frontier = Set.Make (struct
  type t = int * int * V.t

  let compare = compare
end)

let run ?(trace = Ovo_obs.Trace.null) ?(kind = C.Bdd) tt =
  let n = Ovo_boolfun.Truthtable.arity tt in
  let goal = V.full n in
  (* the admissible heuristic is the shared counting bound of
     {!Ovo_core.Bound} — the same implementation the branch-and-bound
     DP sweep and the quantum tower prune with *)
  let lb =
    Ovo_core.Bound.counting_lower kind
      (Ovo_boolfun.Mtable.of_truthtable tt)
  in
  let h iset = lb.Ovo_core.Bound.remaining (V.diff goal iset) in
  let base = C.of_truthtable kind tt in
  let states : (V.t, C.state) Hashtbl.t = Hashtbl.create 256 in
  let best_g : (V.t, int) Hashtbl.t = Hashtbl.create 256 in
  let closed : (V.t, unit) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace states V.empty base;
  Hashtbl.replace best_g V.empty 0;
  let frontier = ref (Frontier.singleton (h V.empty, 0, V.empty)) in
  let expanded = ref 0 and generated = ref 0 in
  let max_depth = ref (-1) in
  let rec search () =
    match Frontier.min_elt_opt !frontier with
    | None -> failwith "Astar.run: frontier exhausted before the goal"
    | Some ((_, neg_g, iset) as entry) ->
        let g = -neg_g in
        frontier := Frontier.remove entry !frontier;
        if Hashtbl.mem closed iset || Hashtbl.find best_g iset < g then
          search ()
        else if iset = goal then Hashtbl.find states iset
        else begin
          Hashtbl.replace closed iset ();
          incr expanded;
          (* progress event: first time the search reaches a new depth
             (variables placed) — at most [n]+1 of these per run *)
          let depth = V.cardinal iset in
          if depth > !max_depth then begin
            max_depth := depth;
            Ovo_obs.Trace.instant trace ~cat:"heur"
              ~args:(fun () ->
                [
                  ("depth", Ovo_obs.Json.Int depth);
                  ("g", Ovo_obs.Json.Int g);
                  ("expanded", Ovo_obs.Json.Int !expanded);
                ])
              "astar.depth"
          end;
          let state = Hashtbl.find states iset in
          (* drop the table of a closed interior node only after its
             successors are built; successors keep their own tables *)
          V.iter
            (fun i ->
              let child = C.compact state i in
              incr generated;
              let cset = V.add i iset in
              let cg = child.C.mincost in
              let better =
                match Hashtbl.find_opt best_g cset with
                | Some old -> cg < old
                | None -> true
              in
              if better && not (Hashtbl.mem closed cset) then begin
                Hashtbl.replace best_g cset cg;
                Hashtbl.replace states cset child;
                frontier := Frontier.add (cg + h cset, -cg, cset) !frontier
              end)
            (V.diff goal iset);
          Hashtbl.remove states iset;
          search ()
        end
  in
  let final =
    Ovo_obs.Trace.with_span trace ~cat:"heur"
      ~args:(fun () ->
        [
          ("n", Ovo_obs.Json.Int n);
          ("expanded", Ovo_obs.Json.Int !expanded);
          ("generated", Ovo_obs.Json.Int !generated);
        ])
      "astar.run" search
  in
  {
    mincost = final.C.mincost;
    order = Array.of_list (C.order final);
    expanded = !expanded;
    generated = !generated;
    subsets_total = 1 lsl n;
  }

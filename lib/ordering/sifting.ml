type result = { mincost : int; order : int array; passes : int; probes : int }

let run_mtable ?(trace = Ovo_obs.Trace.null) ?(kind = Ovo_core.Compact.Bdd)
    ?(max_passes = 8) ?initial mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  let base = Ovo_core.Compact.initial kind mt in
  let cost_of order =
    (Ovo_core.Compact.compact_chain base order).Ovo_core.Compact.mincost
  in
  let order = ref (match initial with None -> Perm.identity n | Some o -> Array.copy o) in
  let probes = ref 0 in
  let probe o =
    incr probes;
    cost_of o
  in
  let cost = ref (probe !order) in
  let widths_of order =
    let st = Ovo_core.Compact.compact_chain base order in
    Ovo_core.Diagram.level_widths (Ovo_core.Diagram.of_state st)
  in
  let passes = ref 0 in
  let improved = ref true in
  Ovo_obs.Trace.with_span trace ~cat:"heur"
    ~args:(fun () ->
      [
        ("n", Ovo_obs.Json.Int n);
        ("passes", Ovo_obs.Json.Int !passes);
        ("probes", Ovo_obs.Json.Int !probes);
        ("mincost", Ovo_obs.Json.Int !cost);
      ])
    "sift.run"
  @@ fun () ->
  while !improved && !passes < max_passes do
    incr passes;
    improved := false;
    (* sift the fattest levels first, per Rudell *)
    let widths = widths_of !order in
    let schedule =
      List.sort
        (fun (_, w1) (_, w2) -> compare w2 w1)
        (List.init n (fun pos -> ((!order).(pos), widths.(pos))))
    in
    List.iter
      (fun (v, _) ->
        (* current position of v may have shifted during this pass *)
        let from = ref 0 in
        Array.iteri (fun i x -> if x = v then from := i) !order;
        let best_cost = ref !cost and best_order = ref !order in
        for target = 0 to n - 1 do
          if target <> !from then begin
            let cand = Perm.move !order ~from:!from ~to_:target in
            let c = probe cand in
            if c < !best_cost then begin
              best_cost := c;
              best_order := cand
            end
          end
        done;
        if !best_cost < !cost then begin
          Ovo_obs.Trace.instant trace ~cat:"heur"
            ~args:(fun () ->
              [
                ("pass", Ovo_obs.Json.Int !passes);
                ("var", Ovo_obs.Json.Int v);
                ("from", Ovo_obs.Json.Int !cost);
                ("to", Ovo_obs.Json.Int !best_cost);
              ])
            "sift.improve";
          cost := !best_cost;
          order := !best_order;
          improved := true
        end)
      schedule
  done;
  { mincost = !cost; order = !order; passes = !passes; probes = !probes }

let run ?trace ?kind ?max_passes ?initial tt =
  run_mtable ?trace ?kind ?max_passes ?initial
    (Ovo_boolfun.Mtable.of_truthtable tt)

(** Exact ordering by best-first A* search over the subset lattice.

    The FS dynamic program unconditionally visits all [2^n] subsets.
    Following the exact-minimisation line of Ebendt/Drechsler, the same
    lattice can be searched best-first: a node is a bottom-block set [I]
    with [g(I) = MINCOST_I] (realised by a compaction state) and an
    admissible, consistent heuristic

    [h(I) = #(support(f) ∖ I)]

    — every variable the function essentially depends on labels at least
    one node in any diagram, so at least that many nodes remain above the
    block.  A* therefore returns the exact optimum while expanding only
    the subsets whose optimistic total beats the optimum: on structured
    functions this is a small fraction of [2^n] (the benches quantify
    it); on dense random functions it degrades towards full FS with a
    queue on top.

    Memory note: like FS, live states keep their tables; the closed set
    stores only costs. *)

type result = {
  mincost : int;
  order : int array;  (** read-last first, as everywhere *)
  expanded : int;  (** subsets popped from the queue *)
  generated : int;  (** successor states created *)
  subsets_total : int;  (** [2^n], for the pruning ratio *)
}

val run :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Exact minimisation; agrees with {!Ovo_core.Fs.run} by construction
    (the tests enforce it). *)

module B = Ovo_core.Bound
module C = Ovo_core.Compact
module Mtable = Ovo_boolfun.Mtable

let sifting_upper_mtable ?trace ?kind ?max_passes mt =
  let r = Sifting.run_mtable ?trace ?kind ?max_passes mt in
  { B.ub_source = "sifting"; ub_value = r.Sifting.mincost }

let sifting_upper ?trace ?kind ?max_passes tt =
  sifting_upper_mtable ?trace ?kind ?max_passes (Mtable.of_truthtable tt)

let portfolio_upper ?trace ?kind ?rng ?extra tt =
  let r = Portfolio.run ?trace ?kind ?rng ?extra tt in
  {
    B.ub_source = "portfolio:" ^ r.Portfolio.best.Portfolio.method_name;
    ub_value = r.Portfolio.best.Portfolio.mincost;
  }

let bound_mtable ?trace ?(kind = C.Bdd) ?max_passes mt =
  B.make ~seed:(sifting_upper_mtable ?trace ~kind ?max_passes mt)
    (B.counting_lower kind mt)

let bound ?trace ?(kind = C.Bdd) ?(portfolio = false) ?rng tt =
  let seed =
    if portfolio then portfolio_upper ?trace ~kind ?rng tt
    else sifting_upper ?trace ~kind tt
  in
  B.make ~seed (B.counting_lower kind (Mtable.of_truthtable tt))

(* Replaying any permutation bottom-up gives an achievable weighted
   total, so either reading of the heuristic order's direction yields a
   sound seed — take the cheaper of the two. *)
let weighted_cost_of_chain ~kind ~weights mt order =
  let st = ref (C.initial kind mt) and total = ref 0 in
  Array.iter
    (fun h ->
      let next = C.materialise !st h in
      total := !total + (weights.(h) * C.width_of_last ~before:!st ~after:next);
      st := next)
    order;
  !total

let weighted_bound ?trace ?(kind = C.Bdd) ~weights mt =
  let r = Sifting.run_mtable ?trace ~kind mt in
  let rev = Array.of_list (List.rev (Array.to_list r.Sifting.order)) in
  let ub_value =
    min
      (weighted_cost_of_chain ~kind ~weights mt r.Sifting.order)
      (weighted_cost_of_chain ~kind ~weights mt rev)
  in
  B.make
    ~seed:{ B.ub_source = "sifting-weighted"; ub_value }
    (B.weighted_counting_lower ~weights kind mt)

(* No multi-rooted sifting exists yet; the identity placement is still
   an achievable shared total and typically within a small factor. *)
let shared_bound ?(kind = C.Bdd) mts =
  let module Sh = Ovo_core.Shared in
  let st = ref (Sh.initial kind mts) in
  let n = (!st).Sh.n in
  for h = 0 to n - 1 do
    st := Sh.materialise !st h
  done;
  B.make
    ~seed:{ B.ub_source = "shared-identity"; ub_value = (!st).Sh.mincost }
    (B.shared_counting_lower kind mts)

type result = { mincost : int; order : int array; sweeps : int; probes : int }

let run_mtable ?(trace = Ovo_obs.Trace.null) ?(kind = Ovo_core.Compact.Bdd)
    ?(window = 3) ?(max_sweeps = 16) ?initial mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  let w = max 2 (min window n) in
  let base = Ovo_core.Compact.initial kind mt in
  let probes = ref 0 in
  let cost_of order =
    incr probes;
    (Ovo_core.Compact.compact_chain base order).Ovo_core.Compact.mincost
  in
  let order = ref (match initial with None -> Perm.identity n | Some o -> Array.copy o) in
  let cost = ref (cost_of !order) in
  let sweeps = ref 0 in
  let improved = ref true in
  Ovo_obs.Trace.with_span trace ~cat:"heur"
    ~args:(fun () ->
      [
        ("n", Ovo_obs.Json.Int n);
        ("window", Ovo_obs.Json.Int w);
        ("sweeps", Ovo_obs.Json.Int !sweeps);
        ("probes", Ovo_obs.Json.Int !probes);
        ("mincost", Ovo_obs.Json.Int !cost);
      ])
    "window.run"
  @@ fun () ->
  while !improved && !sweeps < max_sweeps do
    incr sweeps;
    improved := false;
    for start = 0 to n - w do
      let best_cost = ref !cost and best_order = ref !order in
      Perm.iter_all w (fun sub ->
          let cand = Array.copy !order in
          for i = 0 to w - 1 do
            cand.(start + i) <- (!order).(start + sub.(i))
          done;
          let c = cost_of cand in
          if c < !best_cost then begin
            best_cost := c;
            best_order := cand
          end);
      if !best_cost < !cost then begin
        Ovo_obs.Trace.instant trace ~cat:"heur"
          ~args:(fun () ->
            [
              ("sweep", Ovo_obs.Json.Int !sweeps);
              ("start", Ovo_obs.Json.Int start);
              ("from", Ovo_obs.Json.Int !cost);
              ("to", Ovo_obs.Json.Int !best_cost);
            ])
          "window.improve";
        cost := !best_cost;
        order := !best_order;
        improved := true
      end
    done
  done;
  { mincost = !cost; order = !order; sweeps = !sweeps; probes = !probes }

let run ?trace ?kind ?window ?max_sweeps ?initial tt =
  run_mtable ?trace ?kind ?window ?max_sweeps ?initial
    (Ovo_boolfun.Mtable.of_truthtable tt)

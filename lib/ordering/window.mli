(** Window-permutation reordering.

    Classical local-search heuristic: slide a window of [w] adjacent
    levels across the ordering and replace its contents by the best of
    the [w!] arrangements; sweep until a whole sweep makes no
    improvement.  Cheap ([O(n · w! · 2^n)] per sweep here), weaker than
    sifting, and another baseline with no optimality guarantee. *)

type result = {
  mincost : int;
  order : int array;
  sweeps : int;
  probes : int;
}

val run :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?window:int ->
  ?max_sweeps:int ->
  ?initial:int array ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Default window 3 (clamped to [n]), default [max_sweeps] 16. *)

val run_mtable :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?window:int ->
  ?max_sweeps:int ->
  ?initial:int array ->
  Ovo_boolfun.Mtable.t ->
  result

external monotonic_ns : unit -> int = "ovo_obs_monotonic_ns" [@@noalloc]

type clock = unit -> float

let monotonic () = float_of_int (monotonic_ns ()) *. 1e-9

type arg = string * Json.t

type span = {
  name : string;
  cat : string;
  tid : int;
  start : float;
  stop : float;
  gc_minor_words : float;
  gc_major_words : float;
  args : arg list;
}

type mark = {
  m_name : string;
  m_cat : string;
  m_tid : int;
  m_at : float;
  m_args : arg list;
}

type count = { c_name : string; c_tid : int; c_at : float; c_value : float }

type event = Span of span | Instant of mark | Counter of count

type t = {
  on : bool;
  clock : clock;
  sample_gc : bool;
  lock : Mutex.t;
  mutable events : event list; (* reversed: most recently closed first *)
  mutable n_events : int;
  mutable hook : (event -> unit) option;
  mutable epoch : float;
}

let null =
  {
    on = false;
    clock = (fun () -> 0.);
    sample_gc = false;
    lock = Mutex.create ();
    events = [];
    n_events = 0;
    hook = None;
    epoch = 0.;
  }

let make ?(clock = monotonic) ?(sample_gc = true) () =
  {
    on = true;
    clock;
    sample_gc;
    lock = Mutex.create ();
    events = [];
    n_events = 0;
    hook = None;
    epoch = clock ();
  }

let enabled t = t.on
let now t = t.clock ()
let epoch t = t.epoch
let on_event t f = if t.on then t.hook <- Some f

let record t ev =
  Mutex.lock t.lock;
  t.events <- ev :: t.events;
  t.n_events <- t.n_events + 1;
  let hook = t.hook in
  Mutex.unlock t.lock;
  match hook with None -> () | Some f -> f ev

let tid () = (Domain.self () :> int)

(* [args] is a thunk so callers can report end-of-span deltas (metrics
   diffs, improvement counts); the disabled path is a single branch and
   a tail call. *)
let with_span t ?(cat = "") ?args name f =
  if not t.on then f ()
  else begin
    let tid = tid () in
    (* [Gc.minor_words] reads the domain's allocation pointer, so it is
       exact even between minor collections; [quick_stat].minor_words is
       only refreshed at collection time and would read 0 across short
       spans.  Major words only move at promotion, where quick_stat is
       accurate enough. *)
    let minor0, major0 =
      if t.sample_gc then
        (Gc.minor_words (), (Gc.quick_stat ()).Gc.major_words)
      else (0., 0.)
    in
    let start = t.clock () in
    let close () =
      let stop = t.clock () in
      let gc_minor_words, gc_major_words =
        if t.sample_gc then
          ( Gc.minor_words () -. minor0,
            (Gc.quick_stat ()).Gc.major_words -. major0 )
        else (0., 0.)
      in
      let args = match args with None -> [] | Some f -> f () in
      record t
        (Span { name; cat; tid; start; stop; gc_minor_words; gc_major_words; args })
    in
    match f () with
    | v ->
        close ();
        v
    | exception e ->
        close ();
        raise e
  end

let instant t ?(cat = "") ?args name =
  if t.on then
    let m_args = match args with None -> [] | Some f -> f () in
    record t
      (Instant { m_name = name; m_cat = cat; m_tid = tid (); m_at = t.clock (); m_args })

let counter t name value =
  if t.on then
    record t
      (Counter { c_name = name; c_tid = tid (); c_at = t.clock (); c_value = value })

let events t =
  Mutex.lock t.lock;
  let evs = t.events in
  Mutex.unlock t.lock;
  List.rev evs

let spans t =
  List.filter_map (function Span s -> Some s | _ -> None) (events t)

let event_count t = t.n_events

let clear t =
  Mutex.lock t.lock;
  t.events <- [];
  t.n_events <- 0;
  Mutex.unlock t.lock

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let buf_add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  buf_add_escaped buf s;
  Buffer.contents buf

(* %.17g guarantees round-tripping; strip to %.12g-style readability is
   not worth lossy traces.  Non-finite floats have no JSON spelling. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      buf_add_escaped buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          buf_add_escaped buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser for the same subset (sufficient for the
   round-trip tests and schema checks; numbers without '.', 'e' parse as
   Int).  Errors carry the offending byte offset. *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* decode to UTF-8 (BMP only — enough here) *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec loop () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          loop ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          loop ()
      | _ -> ()
    in
    loop ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing bytes at offset %d" !pos)
    else Ok v
  with Parse_error (at, msg) ->
    Error (Printf.sprintf "%s at offset %d" msg at)

(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec find_path path j =
  match path with
  | [] -> Some j
  | key :: rest -> Option.bind (member key j) (find_path rest)

let to_int_opt = function Int i -> Some i | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None

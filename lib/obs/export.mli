(** Exporters for a recorded {!Trace.t}. *)

val chrome_json : Trace.t -> Json.t
(** The Chrome [trace_event] document: an object with a [traceEvents]
    array of complete ("X"), instant ("i") and counter ("C") events,
    timestamps in microseconds relative to the tracer's epoch.  Loads in
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}. *)

val chrome : Trace.t -> string
val write_chrome : out_channel -> Trace.t -> unit

val jsonl : Trace.t -> string
(** One self-describing JSON object per line, one line per event, in
    close order.  Schema documented in [doc/observability.md]. *)

val write_jsonl : out_channel -> Trace.t -> unit

val summary : ?top:int -> Trace.t -> string
(** Human text profile: wall time, per-name span aggregates, the [top]
    (default 5) slowest individual spans, and Gc allocation totals over
    top-level spans. *)

(** A minimal, dependency-free JSON tree: the single source of truth for
    every piece of JSON the project emits ({!Ovo_core.Metrics.to_json},
    the [--stats json] CLI output, the trace exporters, the bench
    harness).  Emission is escaping-safe — strings always pass through
    {!escape} — and the bundled parser is sufficient to round-trip
    everything this library can print. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** The JSON-escaped contents of a string (no surrounding quotes). *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats print as
    [null] — JSON has no spelling for them. *)

val parse : string -> (t, string) result
(** Inverse of {!to_string} (and a parser for any sane compact JSON):
    numbers without a fraction or exponent come back as {!Int}. *)

val member : string -> t -> t option
(** Field lookup on an {!Obj}; [None] on other constructors. *)

val find_path : string list -> t -> t option
(** Nested {!member} lookup: [find_path ["a"; "b"] j] is the value at
    [j.a.b].  [find_path [] j] is [Some j]. *)

val to_int_opt : t -> int option
val to_bool_opt : t -> bool option
val to_float_opt : t -> float option
(** {!Int} widens to float. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option

/* Monotonic clock for the ovo_obs tracer.  Returned as a tagged
   immediate (nanoseconds fit in 62 bits for ~146 years of uptime), so
   the probe never allocates on the OCaml heap. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value ovo_obs_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}

let span_cat cat = if cat = "" then "ovo" else cat

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON — the "JSON Object Format" with a
   [traceEvents] array, loadable by chrome://tracing and Perfetto.
   Timestamps are microseconds relative to the tracer's epoch; spans
   become complete ("X") events, instants "i", counters "C". *)

let us epoch t = (t -. epoch) *. 1e6

let chrome_event epoch (ev : Trace.event) =
  let open Json in
  match ev with
  | Trace.Span s ->
      Obj
        [
          ("ph", String "X");
          ("pid", Int 0);
          ("tid", Int s.Trace.tid);
          ("ts", Float (us epoch s.Trace.start));
          ("dur", Float ((s.Trace.stop -. s.Trace.start) *. 1e6));
          ("name", String s.Trace.name);
          ("cat", String (span_cat s.Trace.cat));
          ( "args",
            Obj
              (s.Trace.args
              @ [
                  ("gc_minor_words", Float s.Trace.gc_minor_words);
                  ("gc_major_words", Float s.Trace.gc_major_words);
                ]) );
        ]
  | Trace.Instant m ->
      Obj
        [
          ("ph", String "i");
          ("s", String "t");
          ("pid", Int 0);
          ("tid", Int m.Trace.m_tid);
          ("ts", Float (us epoch m.Trace.m_at));
          ("name", String m.Trace.m_name);
          ("cat", String (span_cat m.Trace.m_cat));
          ("args", Obj m.Trace.m_args);
        ]
  | Trace.Counter c ->
      Obj
        [
          ("ph", String "C");
          ("pid", Int 0);
          ("tid", Int c.Trace.c_tid);
          ("ts", Float (us epoch c.Trace.c_at));
          ("name", String c.Trace.c_name);
          ("args", Obj [ ("value", Float c.Trace.c_value) ]);
        ]

let event_ts = function
  | Trace.Span s -> s.Trace.start
  | Trace.Instant m -> m.Trace.m_at
  | Trace.Counter c -> c.Trace.c_at

let chrome_json t =
  let epoch = Trace.epoch t in
  let evs =
    List.stable_sort
      (fun a b -> compare (event_ts a) (event_ts b))
      (Trace.events t)
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (List.map (chrome_event epoch) evs));
    ]

let chrome t = Json.to_string (chrome_json t)

let write_chrome oc t =
  output_string oc (chrome t);
  output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* JSON-lines: one self-describing object per event, in close order —
   the format for downstream log processing. *)

let jsonl_event epoch (ev : Trace.event) =
  let open Json in
  match ev with
  | Trace.Span s ->
      Obj
        [
          ("kind", String "span");
          ("name", String s.Trace.name);
          ("cat", String (span_cat s.Trace.cat));
          ("tid", Int s.Trace.tid);
          ("start_s", Float (s.Trace.start -. epoch));
          ("dur_s", Float (s.Trace.stop -. s.Trace.start));
          ("gc_minor_words", Float s.Trace.gc_minor_words);
          ("gc_major_words", Float s.Trace.gc_major_words);
          ("args", Obj s.Trace.args);
        ]
  | Trace.Instant m ->
      Obj
        [
          ("kind", String "instant");
          ("name", String m.Trace.m_name);
          ("cat", String (span_cat m.Trace.m_cat));
          ("tid", Int m.Trace.m_tid);
          ("at_s", Float (m.Trace.m_at -. epoch));
          ("args", Obj m.Trace.m_args);
        ]
  | Trace.Counter c ->
      Obj
        [
          ("kind", String "counter");
          ("name", String c.Trace.c_name);
          ("tid", Int c.Trace.c_tid);
          ("at_s", Float (c.Trace.c_at -. epoch));
          ("value", Float c.Trace.c_value);
        ]

let jsonl t =
  let buf = Buffer.create 4096 in
  let epoch = Trace.epoch t in
  List.iter
    (fun ev ->
      Json.to_buffer buf (jsonl_event epoch ev);
      Buffer.add_char buf '\n')
    (Trace.events t);
  Buffer.contents buf

let write_jsonl oc t = output_string oc (jsonl t)

(* ------------------------------------------------------------------ *)
(* Human text summary: per-name aggregates, the top slowest individual
   spans, and Gc totals over top-level spans (counting nested spans too
   would double-charge the allocation of their children). *)

type agg = { mutable count : int; mutable total : float; mutable max : float }

let summary ?(top = 5) t =
  let buf = Buffer.create 1024 in
  let evs = Trace.events t in
  let spans = Trace.spans t in
  let instants =
    List.length (List.filter (function Trace.Instant _ -> true | _ -> false) evs)
  in
  let counters =
    List.length (List.filter (function Trace.Counter _ -> true | _ -> false) evs)
  in
  let tids = List.sort_uniq compare (List.map (fun s -> s.Trace.tid) spans) in
  let wall =
    match spans with
    | [] -> 0.
    | s0 :: _ ->
        let lo =
          List.fold_left
            (fun acc s -> Float.min acc s.Trace.start)
            s0.Trace.start spans
        in
        let hi =
          List.fold_left
            (fun acc s -> Float.max acc s.Trace.stop)
            s0.Trace.stop spans
        in
        hi -. lo
  in
  Buffer.add_string buf "== ovo trace profile ==\n";
  Buffer.add_string buf
    (Printf.sprintf
       "wall %.4f s over %d spans, %d instants, %d counters, %d domain(s)\n"
       wall (List.length spans) instants counters (List.length tids));
  (* per-name aggregates *)
  let aggs : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let dur = s.Trace.stop -. s.Trace.start in
      let a =
        match Hashtbl.find_opt aggs s.Trace.name with
        | Some a -> a
        | None ->
            let a = { count = 0; total = 0.; max = 0. } in
            Hashtbl.add aggs s.Trace.name a;
            a
      in
      a.count <- a.count + 1;
      a.total <- a.total +. dur;
      a.max <- Float.max a.max dur)
    spans;
  let rows = Hashtbl.fold (fun name a acc -> (name, a) :: acc) aggs [] in
  let rows = List.sort (fun (_, a) (_, b) -> compare b.total a.total) rows in
  if rows <> [] then begin
    Buffer.add_string buf "per-span aggregate (by name, slowest total first):\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-36s %6s %12s %12s %12s\n" "name" "count" "total s"
         "mean s" "max s");
    List.iter
      (fun (name, a) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-36s %6d %12.6f %12.6f %12.6f\n" name a.count
             a.total
             (a.total /. float_of_int a.count)
             a.max))
      rows
  end;
  (* top slowest individual spans *)
  let slowest =
    List.sort
      (fun a b ->
        compare (b.Trace.stop -. b.Trace.start) (a.Trace.stop -. a.Trace.start))
      spans
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: xs -> x :: take (n - 1) xs
  in
  let slowest = take top slowest in
  if slowest <> [] then begin
    Buffer.add_string buf (Printf.sprintf "top-%d slowest spans:\n" top);
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "  %10.6f s  %-30s [%s] %s\n"
             (s.Trace.stop -. s.Trace.start)
             s.Trace.name (span_cat s.Trace.cat)
             (match s.Trace.args with
             | [] -> ""
             | args -> Json.to_string (Json.Obj args))))
      slowest
  end;
  (* Gc totals: spans on one domain are properly nested, so a sweep in
     start order finds the outermost ones — a span is top-level iff it
     starts at or after the stop of the previous top-level span *)
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let xs = try Hashtbl.find by_tid s.Trace.tid with Not_found -> [] in
      Hashtbl.replace by_tid s.Trace.tid (s :: xs))
    spans;
  let minor = ref 0. and major = ref 0. in
  Hashtbl.iter
    (fun _ xs ->
      let xs = List.sort (fun a b -> compare a.Trace.start b.Trace.start) xs in
      let frontier = ref neg_infinity in
      List.iter
        (fun s ->
          if s.Trace.start >= !frontier then begin
            minor := !minor +. s.Trace.gc_minor_words;
            major := !major +. s.Trace.gc_major_words;
            frontier := s.Trace.stop
          end)
        xs)
    by_tid;
  Buffer.add_string buf
    (Printf.sprintf "Gc (top-level spans): minor %.3e words, major %.3e words\n"
       !minor !major);
  Buffer.contents buf

(** Span/counter tracing with a null-sink fast path.

    A {!t} is either the {!null} tracer — every probe is one branch and
    no allocation, so instrumented paths cost nothing when tracing is
    off — or a buffering tracer created with {!make}, which records
    spans ({!with_span}), instants and counters with monotonic-clock
    timestamps, per-domain attribution (the recording domain's id) and
    {!Gc.quick_stat} deltas at span boundaries.

    The buffer is mutex-protected: {!Ovo_core.Engine.Par} worker domains
    record their per-chunk spans concurrently.  Events are kept in close
    order (a child span closes — and is recorded — before its parent).

    Exporters live in {!Export}: human text summary, JSON-lines, and
    Chrome [trace_event] JSON loadable in [chrome://tracing]/Perfetto. *)

type clock = unit -> float
(** Seconds, from an arbitrary origin. *)

val monotonic : clock
(** [CLOCK_MONOTONIC] via a libc stub — never steps backwards. *)

type arg = string * Json.t

type span = {
  name : string;
  cat : string;
  tid : int;  (** {!Domain.self} of the recording domain *)
  start : float;
  stop : float;
  gc_minor_words : float;  (** minor words allocated inside the span *)
  gc_major_words : float;
  args : arg list;
}

type mark = {
  m_name : string;
  m_cat : string;
  m_tid : int;
  m_at : float;
  m_args : arg list;
}

type count = { c_name : string; c_tid : int; c_at : float; c_value : float }

type event = Span of span | Instant of mark | Counter of count

type t

val null : t
(** The disabled tracer: every probe returns after one branch.  This is
    the default everywhere a [?trace] parameter appears. *)

val make : ?clock:clock -> ?sample_gc:bool -> unit -> t
(** A recording tracer.  [clock] defaults to {!monotonic} (inject a fake
    clock in tests); [sample_gc] (default [true]) samples
    {!Gc.quick_stat} at span boundaries. *)

val enabled : t -> bool
val now : t -> float

val epoch : t -> float
(** Clock value at {!make} time — exporters subtract it. *)

val on_event : t -> (event -> unit) -> unit
(** Install a hook called (synchronously, possibly from a worker domain)
    on every recorded event — the [--progress] ticker.  No-op on
    {!null}. *)

val with_span :
  t -> ?cat:string -> ?args:(unit -> arg list) -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span.  [args] is evaluated at
    close, so it can report deltas accumulated by [f].  The span is
    recorded even when [f] raises (the exception is re-raised). *)

val instant : t -> ?cat:string -> ?args:(unit -> arg list) -> string -> unit
val counter : t -> string -> float -> unit

val events : t -> event list
(** In close order. *)

val spans : t -> span list
(** Just the spans, in close order. *)

val event_count : t -> int
val clear : t -> unit

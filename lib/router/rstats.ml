module Json = Ovo_obs.Json
module R = Ovo_metrics.Registry
module Histo = Ovo_metrics.Histo
module Window = Ovo_metrics.Window

type per_shard = {
  s_requests : R.counter;
  s_proxy_hist : R.histogram;
  s_up : R.gauge;
}

type t = {
  clock : unit -> float;
  started : float;
  reg : R.t;
  shards : (string * per_shard) list;  (* fixed at startup, sorted *)
  (* request counters by endpoint (ping/solve/solve_many/...) *)
  m : Mutex.t;
  endpoints : (string, R.counter) Hashtbl.t;
  req_win : Window.t;
  retries : R.counter;
  shard_down : R.counter;
  items : R.counter;
  g_uptime : R.gauge;
  g_shards_up : R.gauge;
}

let known_endpoints =
  [ "ping"; "solve"; "solve_many"; "stats"; "metrics"; "shutdown" ]

let endpoint_counter reg name =
  R.counter reg ~help:"Requests routed, by endpoint"
    ~labels:[ ("endpoint", name) ]
    "ovo_router_requests_total"

let make_shard reg name =
  ( name,
    { s_requests =
        R.counter reg ~help:"Requests proxied, by shard"
          ~labels:[ ("shard", name) ]
          "ovo_router_shard_requests_total";
      s_proxy_hist =
        R.histogram reg ~help:"Proxy round-trip latency, by shard"
          ~labels:[ ("shard", name) ]
          "ovo_router_proxy_duration_ms";
      s_up =
        R.gauge reg ~help:"1 when the shard passes health checks"
          ~labels:[ ("shard", name) ]
          "ovo_router_shard_up" } )

let create ?(clock = Ovo_obs.Trace.monotonic) ~shards () =
  let reg = R.create () in
  let g_uptime =
    R.gauge reg ~help:"Seconds since router start" "ovo_router_uptime_seconds"
  in
  let endpoints = Hashtbl.create 8 in
  List.iter
    (fun name -> Hashtbl.add endpoints name (endpoint_counter reg name))
    known_endpoints;
  let shard_rows =
    List.map (make_shard reg) (List.sort_uniq compare shards)
  in
  (* optimistic start mirrors {!Health} *)
  List.iter (fun (_, s) -> R.set s.s_up 1.) shard_rows;
  { clock; started = clock (); reg; shards = shard_rows;
    m = Mutex.create (); endpoints;
    req_win = Window.create ~clock ();
    retries =
      R.counter reg ~help:"Proxy attempts re-sent to a failover replica"
        "ovo_router_retries_total";
    shard_down =
      R.counter reg
        ~help:"Requests answered shard_down (every owner unreachable)"
        "ovo_router_shard_down_total";
    items =
      R.counter reg ~help:"solve_many items scattered to shards"
        "ovo_router_items_total";
    g_uptime;
    g_shards_up =
      R.gauge reg ~help:"Shards currently passing health checks"
        "ovo_router_shards_up" }

let registry t = t.reg

let endpoint_of t name =
  match Hashtbl.find_opt t.endpoints name with
  | Some c -> c
  | None ->
      Mutex.lock t.m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.m)
        (fun () ->
          match Hashtbl.find_opt t.endpoints name with
          | Some c -> c
          | None ->
              let c = endpoint_counter t.reg name in
              Hashtbl.add t.endpoints name c;
              c)

let record_request t ~endpoint =
  R.inc (endpoint_of t endpoint) 1;
  Window.add t.req_win 1.

let shard_of t name = List.assoc_opt name t.shards

let record_proxy t ~shard ~ms =
  match shard_of t shard with
  | None -> ()
  | Some s ->
      R.inc s.s_requests 1;
      R.observe s.s_proxy_hist ms

let record_retry t = R.inc t.retries 1
let record_shard_down t = R.inc t.shard_down 1
let record_items t n = if n > 0 then R.inc t.items n

let set_shard_up t ~shard up =
  (match shard_of t shard with
  | None -> ()
  | Some s -> R.set s.s_up (if up then 1. else 0.));
  let live =
    List.fold_left
      (fun acc (_, s) -> if R.gauge_value s.s_up > 0.5 then acc + 1 else acc)
      0 t.shards
  in
  R.set t.g_shards_up (float_of_int live)

let uptime_s t = t.clock () -. t.started

let refresh t =
  R.set t.g_uptime (uptime_s t);
  let live =
    List.fold_left
      (fun acc (_, s) -> if R.gauge_value s.s_up > 0.5 then acc + 1 else acc)
      0 t.shards
  in
  R.set t.g_shards_up (float_of_int live)

let dist_json (s : Histo.snapshot) =
  let q p =
    match Histo.quantile s p with None -> Json.Null | Some v -> Json.Float v
  in
  Json.Obj
    [ ("count", Json.Int s.Histo.count);
      ( "mean_ms",
        match Histo.mean s with None -> Json.Null | Some v -> Json.Float v );
      ("p50_ms", q 0.5);
      ("p99_ms", q 0.99) ]

let stats_json t ~health =
  refresh t;
  let shards =
    List.map
      (fun (name, up, since) ->
        let row =
          [ ("up", Json.Bool up); ("since_s", Json.Float since) ]
          @
          match shard_of t name with
          | None -> []
          | Some s ->
              let snap = R.histogram_snapshot s.s_proxy_hist in
              [ ("requests", Json.Int (R.counter_value s.s_requests));
                ("proxy", dist_json snap) ]
        in
        (name, Json.Obj row))
      health
  in
  Json.Obj
    [ ("role", Json.String "router");
      ("uptime_s", Json.Float (uptime_s t));
      ( "requests_per_s",
        Json.Obj
          [ ("1s", Json.Float (Window.rate t.req_win ~window:1));
            ("60s", Json.Float (Window.rate t.req_win ~window:60)) ] );
      ("retries", Json.Int (R.counter_value t.retries));
      ("shard_down", Json.Int (R.counter_value t.shard_down));
      ("items", Json.Int (R.counter_value t.items));
      ("shards", Json.Obj shards) ]

let prom t =
  refresh t;
  Ovo_metrics.Prom.render t.reg

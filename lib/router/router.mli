(** The routing daemon: speaks the same NDJSON protocol as
    {!Ovo_serve.Server} on the front, proxies solves to a fleet of
    [ovo serve] shards on the back.

    Placement: every solve is keyed on the canonical table digest
    ({!Shard_map}), so a shard's result cache sees {e all} repeats of
    an equivalence class instead of [1/N] of them — the fleet's
    aggregate hit rate matches a single daemon's.

    Failure semantics: a transport error on a shard leg marks the
    shard down ({!Health}), and the request — solves are pure, so
    re-dispatch is always safe — fails over to the next replica on the
    key's preference list with exponential backoff.  Only when every
    owning replica is unreachable does the client see a [shard_down]
    error.  [solve_many] scatters sub-batches to owning shards in
    parallel, gathers, and streams per-item replies back in item
    order; items on a shard that dies mid-batch fail over item-wise.

    Local ops ([ping], [stats], [metrics], [shutdown]) answer from the
    router itself; [stats]/[metrics] report {!Rstats} (per-shard
    counters, proxy latency, health), not any one shard. *)

type config = {
  listen : Ovo_serve.Protocol.addr;
  shards : Shard_map.shard list;
  strategy : Shard_map.strategy;
  replicas : int;
      (** length of each key's preference list (primary + failovers);
          default 2 — one shard can die without any [shard_down] *)
  health_interval : float;  (** seconds between health-probe sweeps *)
  connect_timeout : float;  (** bound on each shard connect *)
  backoff_ms : float;
      (** failover backoff: [backoff_ms * 2^k], capped at 2 s *)
  idle_timeout : float option;
      (** shut down after this long without a request (scripted runs) *)
  prom : Ovo_serve.Prom_export.sink option;
}

val default_config :
  listen:Ovo_serve.Protocol.addr -> shards:Shard_map.shard list -> config
(** Rendezvous hashing, 2 replicas, 2 s health interval, 1 s connect
    timeout, 50 ms backoff, no idle timeout, no Prometheus sink. *)

type t

val start : config -> t
(** Bind, spawn acceptor + health checker + exporters, return.
    Raises [Invalid_argument] on an empty or duplicate shard list and
    [Unix.Unix_error] if the listen address cannot be bound. *)

val stats_json : t -> Ovo_obs.Json.t
val prom_text : t -> string
val shutdown : t -> unit
val wait : t -> unit
(** Block until shutdown is initiated, then join the acceptor, stop
    the health checker, flush the Prometheus sink, and close the
    listener (unlinking a Unix-socket path). *)

val run : config -> unit
(** [start], install SIGINT/SIGTERM handlers, print a ready line to
    stderr, and {!wait}. *)

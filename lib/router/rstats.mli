(** Router-side telemetry on the shared {!Ovo_metrics.Registry}
    vocabulary — the router's counterpart of the daemon's
    {!Ovo_serve.Stats}.

    Families (all pre-registered at startup so exposition order never
    depends on traffic): [ovo_router_requests_total{endpoint}],
    [ovo_router_shard_requests_total{shard}],
    [ovo_router_proxy_duration_ms{shard}] (histogram),
    [ovo_router_shard_up{shard}] (gauge),
    [ovo_router_retries_total], [ovo_router_shard_down_total],
    [ovo_router_items_total], [ovo_router_shards_up],
    [ovo_router_uptime_seconds]. *)

type t

val create : ?clock:(unit -> float) -> shards:string list -> unit -> t
val registry : t -> Ovo_metrics.Registry.t

val record_request : t -> endpoint:string -> unit
val record_proxy : t -> shard:string -> ms:float -> unit
(** One proxied round-trip to [shard] took [ms]. *)

val record_retry : t -> unit
val record_shard_down : t -> unit
val record_items : t -> int -> unit
val set_shard_up : t -> shard:string -> bool -> unit

val refresh : t -> unit
(** Recompute the uptime and shards-up gauges (called before any
    exposition, and by the export ticker). *)

val stats_json : t -> health:(string * bool * float) list -> Ovo_obs.Json.t
(** The router's [stats]-op reply; [health] is
    {!Health.snapshot}-shaped. *)

val prom : t -> string
(** Prometheus text exposition of the router registry. *)

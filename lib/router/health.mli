(** Shard liveness registry plus the background health checker.

    Liveness has two feeders: the checker thread, which pings every
    shard each [interval] with a bounded connect, and the data path,
    which calls {!mark_down} the moment a proxied request hits a
    transport error (and {!mark_up} when one succeeds) — so routing
    reacts to a dead shard in the time of one failed request, not one
    probe interval, and a recovered shard is readmitted by the next
    successful probe.

    Shards start optimistically up: the first failed request or probe
    corrects that faster than a pessimistic start would let traffic
    flow at all. *)

type t

val start :
  ?interval:float ->
  ?timeout:float ->
  ?on_change:(string -> bool -> unit) ->
  (string * Ovo_serve.Protocol.addr) list ->
  t
(** Spawn the checker over [(name, addr)] shards.  [interval] (default
    2 s) between probe sweeps; [timeout] (default 1 s) bounds each
    probe's connect.  [on_change name up] fires on every up/down
    transition (the router feeds its health gauges with it). *)

val is_up : t -> string -> bool
val mark_down : t -> string -> unit
val mark_up : t -> string -> unit

val snapshot : t -> (string * bool * float) list
(** [(name, up, seconds in that state)] per shard, in shard order. *)

val stop : t -> unit
(** Stop and join the checker thread. *)

type shard = { name : string; addr : Ovo_serve.Protocol.addr }

type strategy =
  | Rendezvous
  | Ring of { vnodes : int }

let strategy_of_string = function
  | "rendezvous" | "hrw" -> Ok Rendezvous
  | "ring" -> Ok (Ring { vnodes = 64 })
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "ring" -> (
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some v when v > 0 -> Ok (Ring { vnodes = v })
          | _ -> Error (`Msg (Printf.sprintf "bad vnode count in %S" s)))
      | _ ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown hash strategy %S (rendezvous | ring | ring:VNODES)"
                  s)))

let strategy_to_string = function
  | Rendezvous -> "rendezvous"
  | Ring { vnodes } -> Printf.sprintf "ring:%d" vnodes

(* FNV-1a over the bytes, folded into OCaml's 63-bit int (the offset
   basis keeps only the low 62 bits of the canonical 64-bit constant —
   any fixed basis works).  Speed does not matter here (one hash per
   request, or [vnodes] per shard at ring build time); what matters is
   that the function is deterministic across processes — routing has
   to be a pure function of [(key, shard set)], never of process
   state — so no [Hashtbl.hash], whose output is version-dependent,
   and no seeds. *)
(* Splitmix-style finalizer.  Raw FNV-1a under-mixes the top bits when
   two inputs differ only in a short suffix (shard names do), and both
   strategies are maximally sensitive to the top bits — rendezvous
   ranks by magnitude, the ring by position — which measurably skews
   placement (~half the keys moved on a shard add instead of ~1/N
   before this pass).  The multiplier constants are arbitrary odd
   numbers that fit OCaml's int; the shift amounts are splitmix64's. *)
let mix (h : int) : int =
  let h = h lxor (h lsr 30) in
  let h = h * 0x2f58476d1ce4e5b9 in
  let h = h lxor (h lsr 27) in
  let h = h * 0x14b9552b4be02d63 in
  let h = h lxor (h lsr 31) in
  h land max_int

let fnv1a (s : string) : int =
  let h = ref 0xbf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  mix !h

type t = {
  strategy : strategy;
  shards : shard array;  (* sorted by name: layout-independent *)
  ring : (int * int) array;  (* (point, shard index), sorted by point *)
}

let shards t = Array.to_list t.shards
let strategy t = t.strategy

let make ~strategy shards =
  (match shards with
  | [] -> invalid_arg "Shard_map.make: no shards"
  | _ -> ());
  let names = List.map (fun s -> s.name) shards in
  let sorted_names = List.sort_uniq compare names in
  if List.length sorted_names <> List.length names then
    invalid_arg "Shard_map.make: duplicate shard name";
  let shards =
    Array.of_list (List.sort (fun a b -> compare a.name b.name) shards)
  in
  let ring =
    match strategy with
    | Rendezvous -> [||]
    | Ring { vnodes } ->
        let points =
          Array.init (Array.length shards * vnodes) (fun i ->
              let s = i / vnodes and v = i mod vnodes in
              (fnv1a (Printf.sprintf "%s#%d" shards.(s).name v), s))
        in
        Array.sort compare points;
        points
  in
  { strategy; shards; ring }

(* Rendezvous (highest-random-weight): every shard scores
   hash(key, shard); ranking by score gives each key its own
   independent preference list.  Adding a shard can only insert it
   somewhere in a key's list (other shards keep their relative order),
   which is exactly the minimal-disruption property the qcheck suite
   pins down. *)
let rendezvous_rank t ~live key =
  Array.to_list t.shards
  |> List.filter (fun s -> live s.name)
  |> List.map (fun s -> (fnv1a (key ^ "\x00" ^ s.name), s))
  |> List.sort (fun (ha, a) (hb, b) ->
         match compare hb ha with 0 -> compare a.name b.name | c -> c)
  |> List.map snd

(* Ring: walk clockwise from the key's point, collecting distinct live
   shards.  A dead shard's segments fall through to the next point —
   again only the affected keys move. *)
let ring_rank t ~live key =
  let n = Array.length t.ring in
  if n = 0 then []
  else begin
    let point = fnv1a key in
    (* first ring point strictly above the key's point (binary search) *)
    let rec bsearch lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if fst t.ring.(mid) <= point then bsearch (mid + 1) hi
        else bsearch lo mid
    in
    let start = bsearch 0 n mod n in
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    (try
       for i = 0 to n - 1 do
         let _, si = t.ring.((start + i) mod n) in
         let s = t.shards.(si) in
         if live s.name && not (Hashtbl.mem seen s.name) then begin
           Hashtbl.add seen s.name ();
           out := s :: !out;
           if Hashtbl.length seen = Array.length t.shards then raise Exit
         end
       done
     with Exit -> ());
    List.rev !out
  end

let owners ?(replicas = 1) t ~live key =
  let ranked =
    match t.strategy with
    | Rendezvous -> rendezvous_rank t ~live key
    | Ring _ -> ring_rank t ~live key
  in
  List.filteri (fun i _ -> i < max 1 replicas) ranked

let owner t ~live key =
  match owners ~replicas:1 t ~live key with
  | s :: _ -> Some s
  | [] -> None

module P = Ovo_serve.Protocol
module Client = Ovo_serve.Client
module Net = Ovo_serve.Net
module Prom_export = Ovo_serve.Prom_export
module Truthtable = Ovo_boolfun.Truthtable
module Trace = Ovo_obs.Trace
module Json = Ovo_obs.Json

type config = {
  listen : P.addr;
  shards : Shard_map.shard list;
  strategy : Shard_map.strategy;
  replicas : int;
  health_interval : float;
  connect_timeout : float;
  backoff_ms : float;
  idle_timeout : float option;
  prom : Prom_export.sink option;
}

let default_config ~listen ~shards =
  { listen; shards; strategy = Shard_map.Rendezvous; replicas = 2;
    health_interval = 2.0; connect_timeout = 1.0; backoff_ms = 50.;
    idle_timeout = None; prom = None }

type t = {
  cfg : config;
  map : Shard_map.t;
  health : Health.t;
  stats : Rstats.t;
  lsock : Unix.file_descr;
  stop : bool Atomic.t;
  last_activity : float Atomic.t;
  mutable acceptor : Thread.t option;
  mutable prom_export : Prom_export.t option;
}

let now = Trace.monotonic

(* The routing key: the same permutation-invariant canonical digest the
   shard keys its result cache on, so one equivalence class of tables
   always lands on one shard and that shard's cache concentrates.  An
   unparseable table still needs a deterministic home (some shard will
   produce the bad_request reply) — hash the raw string. *)
let key_of_table table =
  match Truthtable.of_string table with
  | exception Invalid_argument _ -> table
  | exception Failure _ -> table
  | tt ->
      let canon, _perm = Truthtable.canonicalize tt in
      Truthtable.digest_of_canonical canon

let shard_down_body tried =
  P.Error
    { code = P.Shard_down;
      message =
        (match tried with
        | [] -> "no live shard owns this key"
        | l ->
            Printf.sprintf "every owning replica is unreachable (tried %s)"
              (String.concat ", " l));
      retry_after_ms = None }

(* ---------- per-connection shard legs ---------- *)

(* Each client connection gets its own cache of shard connections:
   no cross-connection locking, and a shard leg is never shared by two
   threads at once (scatter rounds join before the next round runs). *)
type ctx = { t : t; clients : (string, Client.t) Hashtbl.t }

let client_for ctx (s : Shard_map.shard) =
  match Hashtbl.find_opt ctx.clients s.name with
  | Some c -> Ok c
  | None -> (
      match Client.connect ~timeout:ctx.t.cfg.connect_timeout s.addr with
      | c ->
          Hashtbl.replace ctx.clients s.name c;
          Ok c
      | exception Unix.Unix_error (e, _, _) ->
          Error (Unix.error_message e))

let drop_client ctx name =
  match Hashtbl.find_opt ctx.clients name with
  | None -> ()
  | Some c ->
      Client.close c;
      Hashtbl.remove ctx.clients name

let note_shard_ok ctx name =
  Health.mark_up ctx.t.health name;
  Rstats.set_shard_up ctx.t.stats ~shard:name true

let note_shard_dead ctx name =
  drop_client ctx name;
  Health.mark_down ctx.t.health name;
  Rstats.set_shard_up ctx.t.stats ~shard:name false

let live_owners ?exclude ctx key =
  let excluded = Option.value exclude ~default:[] in
  Shard_map.owners ~replicas:ctx.t.cfg.replicas ctx.t.map
    ~live:(fun name ->
      (not (List.mem name excluded)) && Health.is_up ctx.t.health name)
    key

(* ---------- single solve: walk the replica list ---------- *)

let proxy_solve ctx id (p : P.solve_params) =
  let key = key_of_table p.table in
  let rec go attempt tried =
    match live_owners ~exclude:tried ctx key with
    | [] ->
        Rstats.record_shard_down ctx.t.stats;
        shard_down_body (List.rev tried)
    | shard :: _ -> (
        if attempt > 0 then begin
          Rstats.record_retry ctx.t.stats;
          Thread.delay
            (Float.min 2.
               (ctx.t.cfg.backoff_ms *. (2. ** float_of_int (attempt - 1))
               /. 1000.))
        end;
        let started = now () in
        let outcome =
          match client_for ctx shard with
          | Error m -> Error m
          | Ok c -> (
              match Client.roundtrip c { P.id; op = P.Solve p } with
              | Ok r -> Ok r.P.body
              | Error (`Msg m) -> Error m)
        in
        match outcome with
        | Ok body ->
            note_shard_ok ctx shard.name;
            Rstats.record_proxy ctx.t.stats ~shard:shard.name
              ~ms:((now () -. started) *. 1000.);
            body
        | Error _ ->
            (* a dead shard mid-solve is safe to retry elsewhere: solves
               are pure, so re-dispatch can only repeat work, never
               corrupt state *)
            note_shard_dead ctx shard.name;
            go (attempt + 1) (shard.name :: tried))
  in
  go 0 []

(* ---------- solve_many: scatter / gather ---------- *)

(* One scatter round: group the still-unanswered items by their first
   live owner, send one [Solve_many] sub-batch per shard in parallel
   threads, fill [results] at the items' original indices as replies
   stream back, and return what is left (items whose shard died before
   answering them) for the next round.  Rounds join every thread before
   the next begins, so a shard leg is never used by two threads at
   once. *)
let scatter_round ctx id ~results ~exclude items =
  let groups = Hashtbl.create 8 in
  let orphans = ref [] in
  List.iter
    (fun ((_, _, key) as it) ->
      match live_owners ~exclude ctx key with
      | [] -> orphans := it :: !orphans
      | shard :: _ ->
          Hashtbl.replace groups shard.Shard_map.name
            (shard,
             it
             ::
             (match Hashtbl.find_opt groups shard.Shard_map.name with
             | Some (_, l) -> l
             | None -> [])))
    items;
  let failed = ref [] in
  let failed_m = Mutex.create () in
  let run_group (shard, rev_items) =
    let sub = Array.of_list (List.rev rev_items) in
    let params = Array.to_list (Array.map (fun (_, p, _) -> p) sub) in
    let fail_from j =
      Mutex.lock failed_m;
      for k = Array.length sub - 1 downto j do
        failed := (shard.Shard_map.name, sub.(k)) :: !failed
      done;
      Mutex.unlock failed_m
    in
    let started = now () in
    match client_for ctx shard with
    | Error _ ->
        note_shard_dead ctx shard.Shard_map.name;
        fail_from 0
    | Ok c -> (
        match Client.send c { P.id; op = P.Solve_many params } with
        | exception Sys_error _ ->
            note_shard_dead ctx shard.Shard_map.name;
            fail_from 0
        | () ->
            (* replies come back in sub-batch item order *)
            let rec read k =
              if k >= Array.length sub then begin
                note_shard_ok ctx shard.Shard_map.name;
                Rstats.record_proxy ctx.t.stats ~shard:shard.Shard_map.name
                  ~ms:((now () -. started) *. 1000.)
              end
              else
                match Client.recv c with
                | Ok { P.item = Some j; body; _ }
                  when j >= 0 && j < Array.length sub ->
                    let orig, _, _ = sub.(j) in
                    results.(orig) <- Some body;
                    read (k + 1)
                | Ok _ | Error (`Msg _) ->
                    (* a reply we cannot attribute, or a dead leg:
                       everything not yet answered fails over *)
                    note_shard_dead ctx shard.Shard_map.name;
                    Mutex.lock failed_m;
                    Array.iter
                      (fun ((orig, _, _) as it) ->
                        if results.(orig) = None then
                          failed := (shard.Shard_map.name, it) :: !failed)
                      sub;
                    Mutex.unlock failed_m
            in
            read 0)
  in
  let threads =
    Hashtbl.fold
      (fun _ group acc -> Thread.create run_group group :: acc)
      groups []
  in
  List.iter Thread.join threads;
  (!orphans, !failed)

let proxy_solve_many ctx id (items : P.solve_params list) =
  let n = List.length items in
  Rstats.record_items ctx.t.stats n;
  let results = Array.make n None in
  let indexed =
    List.mapi
      (fun i (p : P.solve_params) -> (i, p, key_of_table p.table))
      items
  in
  let max_rounds = List.length ctx.t.cfg.shards in
  let rec rounds attempt exclude todo =
    if todo = [] then ()
    else if attempt >= max_rounds then ()  (* leftovers become shard_down *)
    else begin
      if attempt > 0 then begin
        Rstats.record_retry ctx.t.stats;
        Thread.delay
          (Float.min 2.
             (ctx.t.cfg.backoff_ms *. (2. ** float_of_int (attempt - 1))
             /. 1000.))
      end;
      let orphans, failed =
        scatter_round ctx id ~results ~exclude todo
      in
      ignore orphans;  (* no live owner now: retrying cannot help them *)
      let dead =
        List.sort_uniq compare (List.map fst failed) @ exclude
      in
      rounds (attempt + 1) dead (List.map snd failed)
    end
  in
  rounds 0 [] indexed;
  let down = shard_down_body [] in
  Array.mapi
    (fun _k r ->
      match r with
      | Some body -> body
      | None ->
          Rstats.record_shard_down ctx.t.stats;
          down)
    results

(* ---------- request loop ---------- *)

let write_reply oc reply =
  output_string oc (P.reply_to_line reply);
  output_char oc '\n';
  flush oc

let shutdown t = Atomic.set t.stop true

let stats_json t =
  Rstats.stats_json t.stats ~health:(Health.snapshot t.health)

let prom_text t = Rstats.prom t.stats

let handle_request ctx oc ({ id; op } : P.request) =
  let t = ctx.t in
  Atomic.set t.last_activity (now ());
  let endpoint =
    match op with
    | P.Ping -> "ping"
    | P.Stats -> "stats"
    | P.Metrics _ -> "metrics"
    | P.Shutdown -> "shutdown"
    | P.Solve _ -> "solve"
    | P.Solve_many _ -> "solve_many"
  in
  Rstats.record_request t.stats ~endpoint;
  (match op with
  | P.Ping -> write_reply oc (P.reply id P.Pong)
  | P.Stats -> write_reply oc (P.reply id (P.Ok_stats (stats_json t)))
  | P.Metrics P.Mjson ->
      write_reply oc (P.reply id (P.Ok_metrics (stats_json t)))
  | P.Metrics P.Mprom ->
      write_reply oc (P.reply id (P.Ok_prom (prom_text t)))
  | P.Shutdown -> write_reply oc (P.reply id P.Bye)
  | P.Solve p -> write_reply oc (P.reply id (proxy_solve ctx id p))
  | P.Solve_many [] ->
      write_reply oc
        (P.reply id
           (P.Error
              { code = P.Bad_request; message = "solve_many: empty items";
                retry_after_ms = None }))
  | P.Solve_many items ->
      let bodies = proxy_solve_many ctx id items in
      Array.iteri
        (fun k body -> write_reply oc (P.reply ~item:k id body))
        bodies);
  if op = P.Shutdown then shutdown t

let conn_loop t fd =
  let ctx = { t; clients = Hashtbl.create 4 } in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () =
    Hashtbl.iter (fun _ c -> Client.close c) ctx.clients;
    Hashtbl.reset ctx.clients;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> ()
        | exception Sys_error _ -> ()
        | line ->
            if String.trim line <> "" then begin
              match P.request_of_line line with
              | Ok req -> handle_request ctx oc req
              | Error (`Msg m) ->
                  write_reply oc
                    (P.reply 0
                       (P.Error
                          { code = P.Bad_request; message = m;
                            retry_after_ms = None }))
            end;
            loop ()
      in
      try loop () with Sys_error _ -> ())

let acceptor_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else begin
      (match t.cfg.idle_timeout with
      | Some limit when now () -. Atomic.get t.last_activity > limit ->
          shutdown t
      | _ -> ());
      if Atomic.get t.stop then ()
      else
        match Unix.select [ t.lsock ] [] [] 0.25 with
        | [], _, _ -> loop ()
        | _ :: _, _, _ ->
            (match Unix.accept t.lsock with
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                Atomic.set t.last_activity (now ());
                ignore (Thread.create (fun () -> conn_loop t fd) ()));
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ()

(* ---------- lifecycle ---------- *)

let start cfg =
  let cfg = { cfg with replicas = max 1 cfg.replicas } in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Sys_error _ | Invalid_argument _ -> ());
  let map = Shard_map.make ~strategy:cfg.strategy cfg.shards in
  let names = List.map (fun (s : Shard_map.shard) -> s.name) cfg.shards in
  let stats = Rstats.create ~shards:names () in
  let health =
    Health.start ~interval:cfg.health_interval ~timeout:cfg.connect_timeout
      ~on_change:(fun name up -> Rstats.set_shard_up stats ~shard:name up)
      (List.map (fun (s : Shard_map.shard) -> (s.name, s.addr)) cfg.shards)
  in
  let lsock = Net.bind_listen cfg.listen in
  let t =
    { cfg; map; health; stats; lsock; stop = Atomic.make false;
      last_activity = Atomic.make (now ()); acceptor = None;
      prom_export = None }
  in
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t.prom_export <-
    Some
      (Prom_export.start ~sink:cfg.prom
         ~render:(fun () -> prom_text t)
         ~refresh:(fun () -> Rstats.refresh t.stats)
         ());
  t

let wait t =
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done;
  Option.iter Thread.join t.acceptor;
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  Health.stop t.health;
  Option.iter Prom_export.stop_and_flush t.prom_export;
  (match t.cfg.listen with
  | P.Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | P.Tcp _ -> ());
  Printf.eprintf "[ovo-router] shutdown: final stats: %s\n%!"
    (Json.to_string (stats_json t))

let run cfg =
  let t = start cfg in
  let stop_signal _ = shutdown t in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal)
   with Sys_error _ | Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal)
   with Sys_error _ | Invalid_argument _ -> ());
  Printf.eprintf
    "[ovo-router] routing %s over %d shard%s (%s, %d replica%s)\n%!"
    (P.addr_to_string t.cfg.listen)
    (List.length t.cfg.shards)
    (if List.length t.cfg.shards = 1 then "" else "s")
    (Shard_map.strategy_to_string t.cfg.strategy)
    t.cfg.replicas
    (if t.cfg.replicas = 1 then "" else "s");
  wait t

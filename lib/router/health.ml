module P = Ovo_serve.Protocol
module Client = Ovo_serve.Client

type state = { mutable up : bool; mutable since : float; mutable fails : int }

type t = {
  table : (string, state) Hashtbl.t;
  m : Mutex.t;
  interval : float;
  timeout : float;
  addrs : (string * P.addr) list;
  stop : bool Atomic.t;
  on_change : string -> bool -> unit;
  mutable checker : Thread.t option;
}

let now () = Unix.gettimeofday ()

let state t name =
  match Hashtbl.find_opt t.table name with
  | Some s -> s
  | None ->
      let s = { up = true; since = now (); fails = 0 } in
      Hashtbl.add t.table name s;
      s

let is_up t name =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () -> (state t name).up)

let set t name up =
  Mutex.lock t.m;
  let changed =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.m)
      (fun () ->
        let s = state t name in
        let changed = s.up <> up in
        if changed then begin
          s.up <- up;
          s.since <- now ()
        end;
        s.fails <- (if up then 0 else s.fails + 1);
        changed)
  in
  if changed then t.on_change name up

let mark_down t name = set t name false
let mark_up t name = set t name true

let snapshot t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      List.map
        (fun (name, _) ->
          let s = state t name in
          (name, s.up, now () -. s.since))
        t.addrs)

(* One probe: connect (bounded) and ping.  Any failure marks the shard
   down; the next successful probe marks it back up — the data path
   also calls [mark_down]/[mark_up] as its own proxying succeeds or
   fails, so recovery does not have to wait a full interval. *)
let probe t (name, addr) =
  let ok =
    match Client.connect ~timeout:t.timeout addr with
    | exception Unix.Unix_error _ -> false
    | c ->
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            match Client.roundtrip c { P.id = 0; op = P.Ping } with
            | Ok { P.body = P.Pong; _ } -> true
            | Ok _ | Error _ -> false)
  in
  set t name ok

let checker_loop t =
  let rec nap k =
    if k > 0 && not (Atomic.get t.stop) then begin
      Thread.delay 0.1;
      nap (k - 1)
    end
  in
  let naps = max 1 (int_of_float (Float.round (t.interval /. 0.1))) in
  let rec loop () =
    if Atomic.get t.stop then ()
    else begin
      List.iter (fun s -> if not (Atomic.get t.stop) then probe t s) t.addrs;
      nap naps;
      loop ()
    end
  in
  loop ()

let start ?(interval = 2.0) ?(timeout = 1.0)
    ?(on_change = fun _ _ -> ()) addrs =
  let t =
    { table = Hashtbl.create 8; m = Mutex.create (); interval; timeout;
      addrs; stop = Atomic.make false; on_change; checker = None }
  in
  (* everything starts up: the first request (or first probe) corrects
     an optimistic start faster than pessimism would let traffic flow *)
  List.iter (fun (name, _) -> ignore (state t name)) addrs;
  t.checker <- Some (Thread.create checker_loop t);
  t

let stop t =
  Atomic.set t.stop true;
  Option.iter Thread.join t.checker;
  t.checker <- None

(** Consistent-hash placement of canonical digests onto shards.

    The router keys every solve on the {e permutation-invariant} table
    digest — the same string the shard's result cache is keyed on — so
    all functions in one NPN-ish equivalence class land on the same
    shard and its cache concentrates instead of diluting N ways.

    Two strategies, both built on a process-independent FNV-1a hash
    (never [Hashtbl.hash], whose value may change across runtimes):

    - {!Rendezvous} (highest-random-weight): rank shards by
      [hash (key, shard)].  No precomputed state, perfect balance in
      expectation, O(shards log shards) per lookup.
    - {!Ring}: classic ring with [vnodes] virtual points per shard,
      O(log (shards * vnodes)) per lookup.

    Both give the consistent-hash contract the qcheck suite pins down:
    routing is a pure function of [(key, live shard set)], and adding
    or removing one shard only moves the keys that shard owns
    (~[1/N] of them) — every other key keeps its owner. *)

type shard = { name : string; addr : Ovo_serve.Protocol.addr }

type strategy =
  | Rendezvous
  | Ring of { vnodes : int }

val strategy_of_string : string -> (strategy, [ `Msg of string ]) result
(** ["rendezvous"] (or ["hrw"]), ["ring"] (64 vnodes), or
    ["ring:VNODES"]. *)

val strategy_to_string : strategy -> string

val fnv1a : string -> int
(** The placement hash (FNV-1a 64, masked non-negative) — exposed for
    the property tests. *)

type t

val make : strategy:strategy -> shard list -> t
(** Build a map.  Raises [Invalid_argument] on an empty list or a
    duplicate shard name.  Shard order in the input does not matter
    (the map sorts by name). *)

val shards : t -> shard list
val strategy : t -> strategy

val owners :
  ?replicas:int -> t -> live:(string -> bool) -> string -> shard list
(** The first [replicas] (default 1) shards of [key]'s preference
    list, restricted to shards whose name satisfies [live] — primary
    first, then the failover order.  Fewer (possibly zero) when not
    enough shards are live. *)

val owner : t -> live:(string -> bool) -> string -> shard option
(** [owners ~replicas:1] as an option. *)

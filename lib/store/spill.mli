(** On-disk spill segments for the memory-budgeted subset DP.

    When {!Ovo_core.Subset_dp} runs past its {!Ovo_core.Membudget},
    completed cost/choice layers leave RAM through the injected sink and
    come back lazily during backtracking.  This module is the sink's
    store-side implementation: one CRC-framed {!Rlog} file per
    cardinality layer ([layer-NN.seg] in the spill directory), written
    atomically (temp + fsync + rename), so a segment on disk is either
    complete and checksummed or absent.

    Corruption safety: {!reload} re-frames the segment through
    {!Rlog.read}, so a flipped bit, a truncated tail or a foreign file
    surfaces as [Failure] — the DP reports a clean error and never
    reconstructs from damaged layers. *)

type t
(** A spill directory handle, tracking the segments it wrote. *)

val create : ?fsync:Rlog.fsync -> string -> t
(** Open (creating, recursively) a spill directory.  [fsync] (default
    {!Rlog.Never}) governs segment durability — spill files are
    scratch, so the default only guarantees process-crash safety.
    Raises [Failure] if the path exists and is not a directory. *)

val dir : t -> string

val sink : t -> Ovo_core.Membudget.sink
(** The pair of closures {!Ovo_core.Membudget} injects into the DP. *)

val spill : t -> k:int -> string -> unit
(** Write (atomically, replacing) the segment for layer [k]. *)

val reload : t -> k:int -> string
(** Read layer [k]'s payload back; raises [Failure] on a missing,
    corrupt or truncated segment. *)

val remove : t -> unit
(** Delete every segment this handle wrote, then the directory itself
    if (and only if) it is empty.  Safe to call twice. *)

(** On-disk spill segments for the memory-budgeted subset DP.

    When {!Ovo_core.Subset_dp} runs past its {!Ovo_core.Membudget},
    completed cost/choice {e extents} — fixed-size rank ranges of a
    cardinality layer — leave RAM through the injected sink and come
    back lazily during backtracking.  This module is the sink's
    store-side implementation: one segment file per extent
    ([layer-KK-EEE.seg] in the spill directory), written atomically
    (temp + fsync + rename), so a segment on disk is either complete and
    checksummed or absent.

    Two segment formats share the directory layout.  The default is a
    CRC-framed {!Rlog} whose single record is the encoded extent.  With
    [~mmap:true] ([--spill-mmap]) a segment is instead a raw file —
    magic, payload length, CRC-32, payload at a fixed offset — and
    {!reload} returns a slice of the [Unix.map_file] mapping itself
    ([Lp.S_big]): the kernel pages the bytes in on first touch and may
    evict them again, so reloading never charges the OCaml heap.

    Corruption safety is identical in both modes: a flipped bit, a
    truncated tail or a foreign file surfaces as [Failure] — the DP
    reports a clean error and never reconstructs from damaged
    extents. *)

type t
(** A spill directory handle, tracking the segments it wrote. *)

val create : ?fsync:Rlog.fsync -> ?mmap:bool -> string -> t
(** Open (creating, recursively) a spill directory.  [fsync] (default
    {!Rlog.Never}) governs segment durability — spill files are
    scratch, so the default only guarantees process-crash safety.
    [mmap] (default [false]) selects the mappable raw-segment format.
    Raises [Failure] if the path exists and is not a directory. *)

val dir : t -> string
val mmap : t -> bool

val sink : t -> Ovo_core.Membudget.sink
(** The pair of closures {!Ovo_core.Membudget} injects into the DP. *)

val spill : t -> k:int -> ext:int -> string -> unit
(** Write (atomically, replacing) the segment for extent [ext] of layer
    [k]. *)

val reload : t -> k:int -> ext:int -> Ovo_core.Layer_pack.src
(** Read the extent's payload back — as a string (Rlog mode) or a slice
    of the file mapping (mmap mode).  Raises [Failure] on a missing,
    corrupt or truncated segment. *)

val remove : t -> unit
(** Delete every segment this handle wrote, then the directory itself
    if (and only if) it is empty.  Safe to call twice. *)

(** Binary payload encoding for {!Rlog} records — little-endian, fixed
    widths, no external dependency.  Writers append to a [Buffer];
    readers walk a string and raise {!Corrupt} on any malformed input
    (short data, out-of-range values), which the store layers catch and
    turn into a discarded record — never an abort. *)

exception Corrupt of string
(** A payload that cannot be decoded.  The message names the field. *)

(** {1 Writers} *)

val u8 : Buffer.t -> int -> unit
(** One byte; requires [0 <= v < 256]. *)

val u32 : Buffer.t -> int -> unit
(** Four bytes LE; requires [0 <= v < 2^32]. *)

val u64 : Buffer.t -> int -> unit
(** Eight bytes LE, two's complement — any OCaml [int] round-trips. *)

val varint : Buffer.t -> int -> unit
(** LEB128: 7 value bits per byte, high bit continues; requires
    [v >= 0].  Small values cost one byte — the stream format of
    compressed spill extents. *)

val svarint : Buffer.t -> int -> unit
(** Zig-zag then {!varint} — signed deltas near zero stay short. *)

val str : Buffer.t -> string -> unit
(** [u32] length prefix, then the bytes. *)

val int_array : Buffer.t -> int array -> unit
(** [u32] count, then each element as [u64]. *)

(** {1 Readers} *)

type reader

val reader : string -> reader
(** A cursor at position 0. *)

val r_u8 : reader -> int
val r_u32 : reader -> int

val r_u64 : reader -> int
(** Read back the fixed-width integers, in writing order.  All raise
    [Failure] past end of input. *)

val r_varint : reader -> int

val r_svarint : reader -> int
(** Read back {!varint}/{!svarint}; {!Corrupt} on truncation or a value
    past the native [int] range. *)

val r_str : reader -> string

val r_int_array : reader -> int array
(** Read back a length-prefixed string / int array. *)

val expect_end : reader -> unit
(** Raises {!Corrupt} unless the whole payload was consumed — trailing
    bytes mean a record written by different code. *)

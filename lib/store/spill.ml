let log_src = Logs.Src.create "ovo.store.spill" ~doc:"DP layer spill segments"

module Log = (val Logs.src_log log_src : Logs.LOG)

let rtype_layer = 1

type t = {
  dir : string;
  fsync : Rlog.fsync;
  mutable written : int list;  (* cardinalities with a segment on disk *)
}

let segment_path t k = Filename.concat t.dir (Printf.sprintf "layer-%02d.seg" k)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(fsync = Rlog.Never) dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "Spill.create: %s is not a directory" dir);
  { dir; fsync; written = [] }

let dir t = t.dir

let spill t ~k payload =
  Rlog.write_atomic ~fsync:t.fsync (segment_path t k) [ (rtype_layer, payload) ];
  if not (List.mem k t.written) then t.written <- k :: t.written;
  Log.debug (fun m -> m "spilled layer %d (%d bytes)" k (String.length payload))

let reload t ~k =
  let path = segment_path t k in
  match Rlog.read path with
  | Ok ([ { Rlog.rtype; payload } ], { Rlog.rec_discarded_bytes = 0; _ })
    when rtype = rtype_layer ->
      payload
  | Ok _ ->
      failwith
        (Printf.sprintf "Spill.reload: %s is corrupt or truncated" path)
  | Error msg -> failwith (Printf.sprintf "Spill.reload: %s: %s" path msg)

let sink t = { Ovo_core.Membudget.spill = spill t; reload = reload t }

let remove t =
  List.iter
    (fun k ->
      try Sys.remove (segment_path t k) with Sys_error _ -> ())
    t.written;
  t.written <- [];
  (* only reap the directory when nothing else lives in it *)
  try Unix.rmdir t.dir with Unix.Unix_error (_, _, _) -> ()

let log_src = Logs.Src.create "ovo.store.spill" ~doc:"DP extent spill segments"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Lp = Ovo_core.Layer_pack

let rtype_extent = 1

type t = {
  dir : string;
  fsync : Rlog.fsync;
  mmap : bool;
  mutable written : (int * int) list;  (* (k, ext) with a segment on disk *)
}

let segment_path t ~k ~ext =
  Filename.concat t.dir (Printf.sprintf "layer-%02d-%03d.seg" k ext)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(fsync = Rlog.Never) ?(mmap = false) dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "Spill.create: %s is not a directory" dir);
  { dir; fsync; mmap; written = [] }

let dir t = t.dir
let mmap t = t.mmap

(* Mappable segments are a raw file, not an Rlog: magic, u32 payload
   length, u32 CRC-32, then the payload verbatim at a fixed offset so a
   reload can hand the DP a slice of the mapping itself. *)
let seg_magic = "OVOSEG01"
let seg_header = String.length seg_magic + 8

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let write_mmap ~fsync path payload =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Buffer.create seg_header in
      Buffer.add_string b seg_magic;
      Codec.u32 b (String.length payload);
      Codec.u32 b (Int32.to_int (Crc32.string payload) land 0xFFFFFFFF);
      write_all fd (Buffer.contents b);
      write_all fd payload;
      match fsync with Rlog.Never -> () | _ -> Unix.fsync fd);
  Sys.rename tmp path

let big_u32 (a : Lp.bigstring) pos =
  let byte i = Char.code (Bigarray.Array1.get a (pos + i)) in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let reload_mmap path =
  let fail msg = failwith (Printf.sprintf "Spill.reload: %s: %s" path msg) in
  let fd =
    try Unix.openfile path [ O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size < seg_header then fail "truncated segment";
      let a =
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |])
      in
      for i = 0 to String.length seg_magic - 1 do
        if Bigarray.Array1.get a i <> seg_magic.[i] then fail "foreign magic"
      done;
      let len = big_u32 a (String.length seg_magic) in
      let crc = big_u32 a (String.length seg_magic + 4) in
      if seg_header + len <> size then fail "corrupt or truncated segment";
      (* CRC the mapped pages once; after this they are clean and the OS
         may evict them — the resident cost of a reload is transient *)
      let actual =
        Int32.to_int (Crc32.update_big a ~pos:seg_header ~len) land 0xFFFFFFFF
      in
      if actual <> crc then fail "corrupt or truncated segment";
      Lp.S_big (Bigarray.Array1.sub a seg_header len))

let spill t ~k ~ext payload =
  let path = segment_path t ~k ~ext in
  if t.mmap then write_mmap ~fsync:t.fsync path payload
  else Rlog.write_atomic ~fsync:t.fsync path [ (rtype_extent, payload) ];
  if not (List.mem (k, ext) t.written) then t.written <- (k, ext) :: t.written;
  Log.debug (fun m ->
      m "spilled layer %d extent %d (%d bytes)" k ext (String.length payload))

let reload t ~k ~ext =
  let path = segment_path t ~k ~ext in
  if t.mmap then reload_mmap path
  else
    match Rlog.read path with
    | Ok ([ { Rlog.rtype; payload } ], { Rlog.rec_discarded_bytes = 0; _ })
      when rtype = rtype_extent ->
        Lp.S_string payload
    | Ok _ ->
        failwith
          (Printf.sprintf "Spill.reload: %s is corrupt or truncated" path)
    | Error msg -> failwith (Printf.sprintf "Spill.reload: %s: %s" path msg)

let sink t = { Ovo_core.Membudget.spill = spill t; reload = reload t }

let remove t =
  List.iter
    (fun (k, ext) ->
      try Sys.remove (segment_path t ~k ~ext) with Sys_error _ -> ())
    t.written;
  t.written <- [];
  (* only reap the directory when nothing else lives in it *)
  try Unix.rmdir t.dir with Unix.Unix_error (_, _, _) -> ()

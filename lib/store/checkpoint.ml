let log_src = Logs.Src.create "ovo.store.checkpoint" ~doc:"DP checkpoints"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Sdp = Ovo_core.Subset_dp
module Lp = Ovo_core.Layer_pack
module Varset = Ovo_core.Varset

type meta = { ck_digest : string; ck_kind : Ovo_core.Compact.kind }

let rtype_meta = 0

(* The PR-9 triple format (u64 ksub / u64 cost / u8 choice per entry).
   No longer written: a record of this type ends the resume prefix, so
   an old checkpoint degrades to a fresh start instead of misdecoding. *)
let rtype_layer_legacy = 1

(* Unified with the spill format: the payload is [Layer_pack.encode] of
   the whole layer, so a budget+checkpoint run writes each layer once
   and the checkpoint itself can serve extent reloads ({!sink}). *)
let rtype_layer = 2

let kind_code = function Ovo_core.Compact.Bdd -> 0 | Ovo_core.Compact.Zdd -> 1

let kind_of_code = function
  | 0 -> Ovo_core.Compact.Bdd
  | 1 -> Ovo_core.Compact.Zdd
  | _ -> raise (Codec.Corrupt "kind")

let meta_of ~kind tt =
  {
    ck_digest = Ovo_boolfun.Truthtable.digest_of_canonical tt;
    ck_kind = kind;
  }

let encode_meta m =
  let b = Buffer.create 32 in
  Codec.str b m.ck_digest;
  Codec.u8 b (kind_code m.ck_kind);
  Buffer.contents b

let decode_meta payload =
  let r = Codec.reader payload in
  let ck_digest = Codec.r_str r in
  let ck_kind = kind_of_code (Codec.r_u8 r) in
  Codec.expect_end r;
  { ck_digest; ck_kind }

(* A checkpointed layer is complete (pruned sweeps reject checkpoints),
   so the union of its k-subsets is the sweep's universe — exactly the
   j_set the pack header must carry. *)
let encode_layer (p : Sdp.progress) =
  let j_set =
    Array.fold_left
      (fun acc (ksub, _, _) -> Varset.union acc ksub)
      Varset.empty p.Sdp.p_entries
  in
  Lp.encode (Lp.of_entries ~j_set ~k:p.Sdp.p_layer p.Sdp.p_entries)

let decode_layer payload =
  let pack = Lp.decode payload in
  { Sdp.p_layer = Lp.k pack; p_entries = Lp.entries pack }

type t = { rlog : Rlog.t; layers : (int, string) Hashtbl.t }

let create ?fsync ~path m =
  let rlog = Rlog.create ?fsync path in
  Rlog.append rlog ~rtype:rtype_meta (encode_meta m);
  { rlog; layers = Hashtbl.create 16 }

let append_layer t p =
  let payload = encode_layer p in
  Rlog.append t.rlog ~rtype:rtype_layer payload;
  Hashtbl.replace t.layers p.Sdp.p_layer payload

(* The checkpoint as a spill store: the DP's [on_layer] hook fires
   before the layer is packed, so by the time an extent is evicted its
   layer's record is already in [t.layers] — spilling is a no-op and a
   reload hands back the whole-layer record, which
   [Layer_pack.Extent.of_src] slices down to the requested rank range.
   A budget+checkpoint run therefore writes each layer to disk once. *)
let sink t =
  {
    Ovo_core.Membudget.spill = (fun ~k:_ ~ext:_ _ -> ());
    reload =
      (fun ~k ~ext:_ ->
        match Hashtbl.find_opt t.layers k with
        | Some payload -> Lp.S_string payload
        | None ->
            failwith
              (Printf.sprintf "Checkpoint.sink: layer %d not checkpointed" k));
  }

let close t =
  Rlog.sync t.rlog;
  Rlog.close t.rlog

(* The longest consecutive prefix of layers 1..m that decodes cleanly.
   Append order guarantees consecutiveness in an untampered file; a
   corrupt middle record ends the usable prefix even when later records
   are intact — resuming past a hole would change the result.  A legacy
   (PR-9 triple-format) or unknown record type also ends the prefix:
   old checkpoints restart cleanly rather than misdecode. *)
let layers_prefix records =
  let rec go expect acc = function
    | [] -> List.rev acc
    | { Rlog.rtype; payload } :: rest when rtype = rtype_layer -> (
        match decode_layer payload with
        | p when p.Sdp.p_layer = expect -> go (expect + 1) (p :: acc) rest
        | _ | (exception Failure _) -> List.rev acc)
    | { Rlog.rtype; _ } :: _ ->
        if rtype = rtype_layer_legacy then
          Log.warn (fun m ->
              m "legacy layer record (rtype %d): starting fresh" rtype);
        List.rev acc
  in
  go 1 [] records

let load path =
  match Rlog.read path with
  | Error _ as e -> e
  | Ok ([], _) -> Error (path ^ ": no meta record")
  | Ok ({ Rlog.rtype; payload } :: rest, _) ->
      if rtype <> rtype_meta then Error (path ^ ": first record is not meta")
      else (
        match decode_meta payload with
        | m -> Ok (m, layers_prefix rest)
        | exception Codec.Corrupt _ -> Error (path ^ ": corrupt meta record"))

let open_resume ?fsync ~path m =
  match load path with
  | Error _ ->
      (* missing or unusable: start fresh *)
      (create ?fsync ~path m, [])
  | Ok (m', _) when m' <> m ->
      failwith
        (Printf.sprintf
           "Checkpoint.open_resume: %s records a different run (digest %s)"
           path m'.ck_digest)
  | Ok (_, layers) ->
      (* compact back to the valid prefix, atomically, then append past
         it — a resumed run can itself be killed and resumed *)
      let encoded =
        List.map (fun p -> (p.Sdp.p_layer, encode_layer p)) layers
      in
      Rlog.write_atomic ?fsync path
        ((rtype_meta, encode_meta m)
        :: List.map (fun (_, pl) -> (rtype_layer, pl)) encoded);
      let rlog, records, _ = Rlog.open_append ?fsync path in
      assert (List.length records = 1 + List.length layers);
      let tbl = Hashtbl.create 16 in
      List.iter (fun (k, pl) -> Hashtbl.replace tbl k pl) encoded;
      Log.info (fun m ->
          m "%s: resuming past layer %d" path (List.length layers));
      ({ rlog; layers = tbl }, layers)

let log_src = Logs.Src.create "ovo.store.checkpoint" ~doc:"DP checkpoints"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Sdp = Ovo_core.Subset_dp

type meta = { ck_digest : string; ck_kind : Ovo_core.Compact.kind }

let rtype_meta = 0
let rtype_layer = 1

let kind_code = function Ovo_core.Compact.Bdd -> 0 | Ovo_core.Compact.Zdd -> 1

let kind_of_code = function
  | 0 -> Ovo_core.Compact.Bdd
  | 1 -> Ovo_core.Compact.Zdd
  | _ -> raise (Codec.Corrupt "kind")

let meta_of ~kind tt =
  {
    ck_digest = Ovo_boolfun.Truthtable.digest_of_canonical tt;
    ck_kind = kind;
  }

let encode_meta m =
  let b = Buffer.create 32 in
  Codec.str b m.ck_digest;
  Codec.u8 b (kind_code m.ck_kind);
  Buffer.contents b

let decode_meta payload =
  let r = Codec.reader payload in
  let ck_digest = Codec.r_str r in
  let ck_kind = kind_of_code (Codec.r_u8 r) in
  Codec.expect_end r;
  { ck_digest; ck_kind }

let encode_layer (p : Sdp.progress) =
  let b = Buffer.create (16 + (17 * Array.length p.Sdp.p_entries)) in
  Codec.u32 b p.Sdp.p_layer;
  Codec.u32 b (Array.length p.Sdp.p_entries);
  Array.iter
    (fun (ksub, cost, choice) ->
      Codec.u64 b ksub;
      Codec.u64 b cost;
      Codec.u8 b choice)
    p.Sdp.p_entries;
  Buffer.contents b

let decode_layer payload =
  let r = Codec.reader payload in
  let p_layer = Codec.r_u32 r in
  let count = Codec.r_u32 r in
  (* bound before allocating on a corrupt count *)
  if count * 17 > String.length payload then raise (Codec.Corrupt "count");
  let p_entries =
    Array.init count (fun _ ->
        let ksub = Codec.r_u64 r in
        let cost = Codec.r_u64 r in
        let choice = Codec.r_u8 r in
        (ksub, cost, choice))
  in
  Codec.expect_end r;
  { Sdp.p_layer; p_entries }

type t = { rlog : Rlog.t }

let create ?fsync ~path m =
  let rlog = Rlog.create ?fsync path in
  Rlog.append rlog ~rtype:rtype_meta (encode_meta m);
  { rlog }

let append_layer t p =
  Rlog.append t.rlog ~rtype:rtype_layer (encode_layer p)

let close t =
  Rlog.sync t.rlog;
  Rlog.close t.rlog

(* The longest consecutive prefix of layers 1..m that decodes cleanly.
   Append order guarantees consecutiveness in an untampered file; a
   corrupt middle record ends the usable prefix even when later records
   are intact — resuming past a hole would change the result. *)
let layers_prefix records =
  let rec go expect acc = function
    | [] -> List.rev acc
    | { Rlog.rtype; payload } :: rest when rtype = rtype_layer -> (
        match decode_layer payload with
        | p when p.Sdp.p_layer = expect -> go (expect + 1) (p :: acc) rest
        | _ | (exception Codec.Corrupt _) -> List.rev acc)
    | _ :: _ -> List.rev acc
  in
  go 1 [] records

let load path =
  match Rlog.read path with
  | Error _ as e -> e
  | Ok ([], _) -> Error (path ^ ": no meta record")
  | Ok ({ Rlog.rtype; payload } :: rest, _) ->
      if rtype <> rtype_meta then Error (path ^ ": first record is not meta")
      else (
        match decode_meta payload with
        | m -> Ok (m, layers_prefix rest)
        | exception Codec.Corrupt _ -> Error (path ^ ": corrupt meta record"))

let open_resume ?fsync ~path m =
  match load path with
  | Error _ ->
      (* missing or unusable: start fresh *)
      (create ?fsync ~path m, [])
  | Ok (m', _) when m' <> m ->
      failwith
        (Printf.sprintf
           "Checkpoint.open_resume: %s records a different run (digest %s)"
           path m'.ck_digest)
  | Ok (_, layers) ->
      (* compact back to the valid prefix, atomically, then append past
         it — a resumed run can itself be killed and resumed *)
      Rlog.write_atomic ?fsync path
        ((rtype_meta, encode_meta m)
        :: List.map (fun p -> (rtype_layer, encode_layer p)) layers);
      let rlog, records, _ = Rlog.open_append ?fsync path in
      assert (List.length records = 1 + List.length layers);
      Log.info (fun m ->
          m "%s: resuming past layer %d" path (List.length layers));
      ({ rlog }, layers)

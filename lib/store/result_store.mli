(** Durable backing for the serve daemon's canonical result cache.

    A store is a directory holding two {!Rlog} files: [results.snap]
    (the last compacted snapshot) and [results.wal] (appends since).
    Every cache insert appends one record to the WAL; once the WAL
    outgrows [compact_threshold] bytes the merged content is rewritten
    as a fresh snapshot ({!Rlog.write_atomic} — rename, never in-place)
    and the WAL is reset.

    On open, both files are recovered (torn tails truncated) and every
    record is validated: payloads that fail to decode, or whose stored
    canonical table no longer hashes to the stored digest, are counted
    in [st_discarded_records] and dropped.  The daemon then replays the
    surviving entries through the same digest-plus-equality probe the
    live cache uses, so a corrupt or colliding record degrades to a
    cache miss — never a wrong answer. *)

type entry = {
  digest : string;  (** {!Ovo_boolfun.Truthtable.digest} of [canon] *)
  kind : Ovo_core.Compact.kind;
  canon : Ovo_boolfun.Truthtable.t;
  mincost : int;
  size : int;
  canon_order : int array;
  widths : int array;
}

type stats = {
  st_dir : string;
  st_entries : int;  (** live (deduplicated) entries *)
  st_warm_loaded : int;  (** valid entries found at open *)
  st_recovered_records : int;  (** frame-valid records read at open *)
  st_discarded_records : int;  (** records dropped by payload validation *)
  st_discarded_bytes : int;  (** torn-tail bytes truncated at open *)
  st_appends : int;  (** WAL appends this process *)
  st_compactions : int;  (** snapshot rewrites this process *)
  st_wal_bytes : int;  (** current WAL size *)
  st_snap_bytes : int;  (** current snapshot size *)
}

type t

val open_dir :
  ?trace:Ovo_obs.Trace.t ->
  ?fsync:Rlog.fsync ->
  ?compact_threshold:int ->
  string ->
  t
(** Open (creating the directory if needed) and recover.  [fsync]
    defaults to {!Rlog.Never}; [compact_threshold] (bytes of WAL that
    trigger compaction, default 1 MiB) must be positive.  A recording
    [trace] gets [store.open]/[store.compact] spans and
    [store.append]/[store.discarded] counters. *)

val entries : t -> entry list
(** The live entries in first-insertion order (snapshot before WAL) —
    what the daemon warm-loads into its cache. *)

val append : t -> entry -> unit
(** Persist one entry (last write wins per [(digest, kind)]), compacting
    when the WAL crosses the threshold. *)

val stats : t -> stats
val stats_json : t -> Ovo_obs.Json.t

val close : t -> unit
(** Sync and close both files. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update ?(crc = 0l) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.update";
  let t = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand
           (Int32.logxor !c (Int32.of_int (Char.code (Bytes.unsafe_get buf i))))
           0xFFl)
    in
    c := Int32.logxor (Array.unsafe_get t idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let update_big ?(crc = 0l) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim buf then
    invalid_arg "Crc32.update_big";
  let t = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand
           (Int32.logxor !c
              (Int32.of_int (Char.code (Bigarray.Array1.unsafe_get buf i))))
           0xFFl)
    in
    c := Int32.logxor (Array.unsafe_get t idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let string s =
  update (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

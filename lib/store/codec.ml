exception Corrupt of string

let u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Codec.u8";
  Buffer.add_char b (Char.chr v)

let u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.u32";
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

let u64 b v =
  let v64 = Int64.of_int v in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr
         (Int64.to_int
            (Int64.logand (Int64.shift_right_logical v64 (8 * i)) 0xFFL)))
  done

(* LEB128: 7 value bits per byte, high bit = continuation.  The same
   stream format Layer_pack's compressed extents use (re-implemented
   there because ovo.core cannot depend on this layer). *)
let varint b v =
  if v < 0 then invalid_arg "Codec.varint";
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char b (Char.chr (0x80 lor (!v land 0x7F)));
    v := !v lsr 7
  done;
  Buffer.add_char b (Char.chr !v)

let svarint b v = varint b ((v lsl 1) lxor (v asr (Sys.int_size - 1)))

let str b s =
  u32 b (String.length s);
  Buffer.add_string b s

let int_array b a =
  u32 b (Array.length a);
  Array.iter (u64 b) a

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }

let need r n what =
  if r.pos + n > String.length r.src then raise (Corrupt what)

let r_u8 r =
  need r 1 "u8";
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4 "u32";
  let byte i = Char.code r.src.[r.pos + i] in
  let v = byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24) in
  r.pos <- r.pos + 4;
  v

let r_u64 r =
  need r 8 "u64";
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor
        (Int64.shift_left !v 8)
        (Int64.of_int (Char.code r.src.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  (* OCaml ints are 63-bit: a stored value outside the native range was
     not written by this codec *)
  if Int64.of_int (Int64.to_int !v) <> !v then raise (Corrupt "u64 range");
  Int64.to_int !v

let r_varint r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let byte = r_u8 r in
    if !shift > 62 then raise (Corrupt "varint overflow");
    v := !v lor ((byte land 0x7F) lsl !shift);
    shift := !shift + 7;
    continue := byte land 0x80 <> 0
  done;
  if !v < 0 then raise (Corrupt "varint overflow");
  !v

let r_svarint r =
  let v = r_varint r in
  (v lsr 1) lxor (-(v land 1))

let r_str r =
  let len = r_u32 r in
  need r len "str";
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let r_int_array r =
  let n = r_u32 r in
  (* bound before allocating: a corrupt count must not OOM *)
  if n * 8 > String.length r.src - r.pos then raise (Corrupt "int_array");
  Array.init n (fun _ -> r_u64 r)

let expect_end r =
  if r.pos <> String.length r.src then raise (Corrupt "trailing bytes")

(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]) — the frame checksum of
    the {!Rlog} record format.  Pure OCaml, table-driven; no external
    dependency.  The classic check value holds:
    [string "123456789" = 0xCBF43926l]. *)

val update : ?crc:int32 -> bytes -> pos:int -> len:int -> int32
(** [update ~crc buf ~pos ~len] extends [crc] (default [0l], the empty
    digest) over [len] bytes of [buf] starting at [pos].  Streaming:
    [update ~crc:(update b1) b2] equals the digest of the
    concatenation. *)

val update_big :
  ?crc:int32 ->
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  pos:int ->
  len:int ->
  int32
(** {!update} over a bigstring — used to verify memory-mapped spill
    segments without copying them onto the OCaml heap. *)

val string : string -> int32
(** Digest of a whole string. *)

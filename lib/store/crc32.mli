(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]) — the frame checksum of
    the {!Rlog} record format.  Pure OCaml, table-driven; no external
    dependency.  The classic check value holds:
    [string "123456789" = 0xCBF43926l]. *)

val update : ?crc:int32 -> bytes -> pos:int -> len:int -> int32
(** [update ~crc buf ~pos ~len] extends [crc] (default [0l], the empty
    digest) over [len] bytes of [buf] starting at [pos].  Streaming:
    [update ~crc:(update b1) b2] equals the digest of the
    concatenation. *)

val string : string -> int32
(** Digest of a whole string. *)

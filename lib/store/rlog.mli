(** Crash-safe record log — the framing layer every durable file in the
    store uses ({!Result_store} snapshots and WALs, {!Checkpoint} files).

    A log is an 8-byte magic header followed by length-prefixed,
    CRC-framed records:

    {v [u32 LE len] [u32 LE crc32(body)] [body = u8 rtype ++ payload] v}

    Recovery scans from the header and stops at the first frame that
    does not check out — short length, absurd length, or CRC mismatch —
    and the writing side truncates the file back to that point, so a
    torn tail (kill -9 mid-append, disk-full) costs exactly the
    in-flight record and nothing before it.  Appends are single
    [Unix.write] calls with no userspace buffering: anything a
    successful {!append} wrote survives process death; the {!fsync}
    policy only governs survival of a {e machine} crash. *)

type fsync =
  | Always  (** fsync after every append — slow, machine-crash safe *)
  | Interval of float  (** fsync at most every [s] seconds *)
  | Never  (** leave flushing to the OS *)

val fsync_of_string : string -> (fsync, string) result
(** ["always"], ["never"], ["interval"] (1 s) or ["interval:<seconds>"]. *)

val fsync_to_string : fsync -> string

type record = { rtype : int; payload : string }

type recovery = {
  rec_valid : int;  (** records in the valid prefix *)
  rec_discarded_bytes : int;  (** trailing bytes dropped past it *)
}

val read : string -> (record list * recovery, string) result
(** All records of the valid prefix, read-only.  [Error] when the file
    cannot be read or carries a foreign magic; a missing file is an
    [Error] too. *)

type t
(** An open, appendable log. *)

val open_append : ?fsync:fsync -> string -> t * record list * recovery
(** Open for appending, creating the file (with header) when missing.
    An existing file is recovered first — truncated back to its valid
    prefix, whose records are returned — so new appends never follow
    garbage.  Raises [Failure] on a foreign magic (the file is not
    touched).  [fsync] defaults to {!Never}. *)

val create : ?fsync:fsync -> string -> t
(** Open fresh, truncating any existing content. *)

val append : t -> rtype:int -> string -> unit
(** Frame and append one record ([rtype] must fit a byte), then apply
    the fsync policy. *)

val sync : t -> unit
(** Unconditional fsync. *)

val size : t -> int
(** Current file size in bytes (header included). *)

val path : t -> string
val close : t -> unit

val write_atomic : ?fsync:fsync -> string -> (int * string) list -> unit
(** Write a whole log — header plus [(rtype, payload)] records — to
    [path ^ ".tmp"], fsync, then rename over [path]: readers see either
    the old file or the complete new one, never a partial write.  Used
    for snapshot compaction. *)

let log_src = Logs.Src.create "ovo.store.results" ~doc:"durable result store"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Tt = Ovo_boolfun.Truthtable

type entry = {
  digest : string;
  kind : Ovo_core.Compact.kind;
  canon : Tt.t;
  mincost : int;
  size : int;
  canon_order : int array;
  widths : int array;
}

type stats = {
  st_dir : string;
  st_entries : int;
  st_warm_loaded : int;
  st_recovered_records : int;
  st_discarded_records : int;
  st_discarded_bytes : int;
  st_appends : int;
  st_compactions : int;
  st_wal_bytes : int;
  st_snap_bytes : int;
}

let rtype_entry = 1

let kind_code = function Ovo_core.Compact.Bdd -> 0 | Ovo_core.Compact.Zdd -> 1

let kind_of_code = function
  | 0 -> Ovo_core.Compact.Bdd
  | 1 -> Ovo_core.Compact.Zdd
  | _ -> raise (Codec.Corrupt "kind")

let encode e =
  let b = Buffer.create 256 in
  Codec.str b e.digest;
  Codec.u8 b (kind_code e.kind);
  Codec.u32 b (Tt.arity e.canon);
  Codec.str b (Tt.to_string e.canon);
  Codec.u32 b e.mincost;
  Codec.u32 b e.size;
  Codec.int_array b e.canon_order;
  Codec.int_array b e.widths;
  Buffer.contents b

(* Decode and validate one record.  Anything wrong — malformed payload,
   table that does not parse, or a stored digest the table no longer
   hashes to (bit rot inside a CRC-sized blind spot, or a record written
   by other code) — yields [None]; the caller counts it discarded. *)
let decode payload =
  match
    let r = Codec.reader payload in
    let digest = Codec.r_str r in
    let kind = kind_of_code (Codec.r_u8 r) in
    let arity = Codec.r_u32 r in
    let table = Codec.r_str r in
    let mincost = Codec.r_u32 r in
    let size = Codec.r_u32 r in
    let canon_order = Codec.r_int_array r in
    let widths = Codec.r_int_array r in
    Codec.expect_end r;
    if String.length table <> 1 lsl arity then raise (Codec.Corrupt "table");
    let canon = Tt.of_string table in
    if Tt.arity canon <> arity then raise (Codec.Corrupt "arity");
    if Tt.digest_of_canonical canon <> digest then
      raise (Codec.Corrupt "digest mismatch");
    { digest; kind; canon; mincost; size; canon_order; widths }
  with
  | e -> Some e
  | exception Codec.Corrupt _ -> None
  | exception Invalid_argument _ -> None

type key = string * int

type t = {
  dir : string;
  trace : Ovo_obs.Trace.t;
  fsync : Rlog.fsync;
  compact_threshold : int;
  tbl : (key, entry) Hashtbl.t;
  mutable key_order : key list;  (** reversed first-insertion order *)
  mutable wal : Rlog.t;
  mutable snap_bytes : int;
  mutable warm_loaded : int;
  mutable recovered_records : int;
  mutable discarded_records : int;
  mutable discarded_bytes : int;
  mutable appends : int;
  mutable compactions : int;
}

let snap_path dir = Filename.concat dir "results.snap"
let wal_path dir = Filename.concat dir "results.wal"

let key_of e = (e.digest, kind_code e.kind)

let insert t e =
  let k = key_of e in
  if not (Hashtbl.mem t.tbl k) then t.key_order <- k :: t.key_order;
  Hashtbl.replace t.tbl k e

let load_records t records =
  List.iter
    (fun { Rlog.rtype; payload } ->
      t.recovered_records <- t.recovered_records + 1;
      if rtype <> rtype_entry then begin
        t.discarded_records <- t.discarded_records + 1;
        Log.warn (fun m -> m "%s: unknown record type %d" t.dir rtype)
      end
      else
        match decode payload with
        | Some e ->
            insert t e;
            t.warm_loaded <- t.warm_loaded + 1
        | None ->
            t.discarded_records <- t.discarded_records + 1;
            Log.warn (fun m -> m "%s: discarding invalid entry record" t.dir))
    records

let open_dir ?(trace = Ovo_obs.Trace.null) ?(fsync = Rlog.Never)
    ?(compact_threshold = 1 lsl 20) dir =
  if compact_threshold <= 0 then invalid_arg "Result_store.open_dir";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg "Result_store.open_dir: not a directory";
  Ovo_obs.Trace.with_span trace ~cat:"store" ~args:(fun () ->
      [ ("dir", Ovo_obs.Json.String dir) ])
    "store.open"
    (fun () ->
      let wal, wal_records, wal_rc = Rlog.open_append ~fsync (wal_path dir) in
      let t =
        {
          dir;
          trace;
          fsync;
          compact_threshold;
          tbl = Hashtbl.create 64;
          key_order = [];
          wal;
          snap_bytes = 0;
          warm_loaded = 0;
          recovered_records = 0;
          discarded_records = 0;
          discarded_bytes = wal_rc.Rlog.rec_discarded_bytes;
          appends = 0;
          compactions = 0;
        }
      in
      (* snapshot first (read-only here; only compaction rewrites it),
         then the WAL on top — last write wins *)
      (match Rlog.read (snap_path dir) with
      | Ok (records, rc) ->
          t.discarded_bytes <- t.discarded_bytes + rc.Rlog.rec_discarded_bytes;
          load_records t records;
          t.snap_bytes <-
            (try (Unix.stat (snap_path dir)).Unix.st_size with _ -> 0)
      | Error _ -> t.snap_bytes <- 0);
      load_records t wal_records;
      if t.discarded_records > 0 then
        Ovo_obs.Trace.counter trace "store.discarded"
          (float_of_int t.discarded_records);
      Log.info (fun m ->
          m "%s: warm-loaded %d entries (%d records, %d discarded, %d torn \
             bytes truncated)"
            dir t.warm_loaded t.recovered_records t.discarded_records
            t.discarded_bytes);
      t)

let entries t =
  List.rev t.key_order
  |> List.filter_map (fun k -> Hashtbl.find_opt t.tbl k)

let compact t =
  Ovo_obs.Trace.with_span t.trace ~cat:"store" ~args:(fun () ->
      [
        ("entries", Ovo_obs.Json.Int (Hashtbl.length t.tbl));
        ("wal_bytes", Ovo_obs.Json.Int (Rlog.size t.wal));
      ])
    "store.compact"
    (fun () ->
      Rlog.write_atomic ~fsync:Rlog.Always (snap_path t.dir)
        (List.map (fun e -> (rtype_entry, encode e)) (entries t));
      t.snap_bytes <-
        (try (Unix.stat (snap_path t.dir)).Unix.st_size with _ -> 0);
      (* snapshot is durable; the WAL can start over *)
      Rlog.close t.wal;
      t.wal <- Rlog.create ~fsync:t.fsync (wal_path t.dir);
      t.compactions <- t.compactions + 1;
      Log.info (fun m ->
          m "%s: compacted %d entries into snapshot (%d B)" t.dir
            (Hashtbl.length t.tbl) t.snap_bytes))

let append t e =
  insert t e;
  Rlog.append t.wal ~rtype:rtype_entry (encode e);
  t.appends <- t.appends + 1;
  Ovo_obs.Trace.counter t.trace "store.append" (float_of_int t.appends);
  if Rlog.size t.wal > t.compact_threshold then compact t

let stats t =
  {
    st_dir = t.dir;
    st_entries = Hashtbl.length t.tbl;
    st_warm_loaded = t.warm_loaded;
    st_recovered_records = t.recovered_records;
    st_discarded_records = t.discarded_records;
    st_discarded_bytes = t.discarded_bytes;
    st_appends = t.appends;
    st_compactions = t.compactions;
    st_wal_bytes = Rlog.size t.wal;
    st_snap_bytes = t.snap_bytes;
  }

let stats_json t =
  let s = stats t in
  Ovo_obs.Json.Obj
    [
      ("dir", Ovo_obs.Json.String s.st_dir);
      ("entries", Ovo_obs.Json.Int s.st_entries);
      ("warm_loaded", Ovo_obs.Json.Int s.st_warm_loaded);
      ("recovered_records", Ovo_obs.Json.Int s.st_recovered_records);
      ("discarded_records", Ovo_obs.Json.Int s.st_discarded_records);
      ("discarded_bytes", Ovo_obs.Json.Int s.st_discarded_bytes);
      ("appends", Ovo_obs.Json.Int s.st_appends);
      ("compactions", Ovo_obs.Json.Int s.st_compactions);
      ("wal_bytes", Ovo_obs.Json.Int s.st_wal_bytes);
      ("snap_bytes", Ovo_obs.Json.Int s.st_snap_bytes);
    ]

let close t =
  Rlog.sync t.wal;
  Rlog.close t.wal

(** Checkpoint/resume for the exact Friedman–Supowit sweep.

    A checkpoint file is an {!Rlog} with one [meta] record (what run
    this is: exact-table digest and diagram kind) followed by one
    [layer] record per completed cardinality layer — the DP's [on_layer]
    hook fires at the same boundaries cancellation is polled.

    Layer records are {e unified with the spill format}: each payload is
    {!Ovo_core.Layer_pack.encode} of the whole layer, the same bytes a
    whole-layer spill would write.  That buys two things: checkpoints
    inherit the pack encoders (dense/sparse/compressed, smallest wins),
    and the open checkpoint can itself serve as the DP's spill store
    ({!sink}) — a budget+checkpoint run writes each layer to disk
    {e once}, and extent reloads slice the layer records already on
    hand.  Records in the pre-unification triple format (record type 1)
    are recognised and end the resume prefix: an old checkpoint degrades
    to a clean fresh start.

    Because layer states are rebuilt by deterministically replaying the
    recorded choice chains, a run killed at any point and resumed from
    its checkpoint produces a solution bit-identical to an uninterrupted
    run, under both {!Ovo_core.Engine.Seq} and {!Ovo_core.Engine.Par}.
    A torn final record (kill -9 mid-append) is truncated away on
    reopen and merely costs re-running that one layer. *)

type meta = {
  ck_digest : string;
      (** {!Ovo_boolfun.Truthtable.digest_of_canonical} of the exact
          input table — an as-is content hash, no canonicalization *)
  ck_kind : Ovo_core.Compact.kind;
}

val meta_of :
  kind:Ovo_core.Compact.kind -> Ovo_boolfun.Truthtable.t -> meta

type t
(** An open checkpoint writer. *)

val create : ?fsync:Rlog.fsync -> path:string -> meta -> t
(** Start a fresh checkpoint, truncating any existing file. *)

val append_layer : t -> Ovo_core.Subset_dp.progress -> unit
(** Persist one completed layer — the [on_layer] hook.  The layer must
    be complete (unpruned); its record doubles as the spill payload
    {!sink} serves. *)

val sink : t -> Ovo_core.Membudget.sink
(** The checkpoint as spill store: spilling an extent is a no-op (its
    layer's record is already appended — the DP checkpoints a layer
    before packing it) and reloading returns the whole-layer record for
    {!Ovo_core.Layer_pack.Extent.of_src} to slice.  Raises [Failure] on
    a reload for a layer this writer never appended. *)

val close : t -> unit

val load :
  string -> (meta * Ovo_core.Subset_dp.progress list, string) result
(** Read a checkpoint: the meta record plus the longest consecutive
    prefix of layers [1..m] that decodes cleanly (torn or corrupt
    records end the prefix).  [Error] when the file is missing, carries
    a foreign magic, or has no valid meta record. *)

val open_resume :
  ?fsync:Rlog.fsync ->
  path:string ->
  meta ->
  t * Ovo_core.Subset_dp.progress list
(** Resume: when [path] holds a checkpoint whose meta matches, the file
    is compacted back to its valid prefix (meta + layers [1..m],
    atomically rewritten) and reopened for appending layer [m+1]; the
    recovered layers are returned for the DP's [resume] argument.
    Raises [Failure] when the file exists but records a {e different}
    run (digest or kind mismatch) — resuming it would corrupt both
    runs.  A missing file degrades to {!create}. *)

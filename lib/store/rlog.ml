let log_src = Logs.Src.create "ovo.store.rlog" ~doc:"record log"

module Log = (val Logs.src_log log_src : Logs.LOG)

let magic = "OVOLOG01"
let header_len = String.length magic

(* framing overhead: u32 len + u32 crc *)
let frame_overhead = 8

(* a frame longer than this was not written by us — reject before
   allocating on a garbage length field *)
let max_record_len = 0x3FFF_FFFF

type fsync = Always | Interval of float | Never

let fsync_of_string = function
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval 1.0)
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
      let rest = String.sub s 9 (String.length s - 9) in
      match float_of_string_opt rest with
      | Some f when f >= 0. -> Ok (Interval f)
      | Some _ | None -> Error (Printf.sprintf "bad fsync interval %S" rest))
  | s ->
      Error
        (Printf.sprintf
           "bad fsync mode %S (expected always, never, interval or \
            interval:<seconds>)"
           s)

let fsync_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval s -> Printf.sprintf "interval:%g" s

type record = { rtype : int; payload : string }
type recovery = { rec_valid : int; rec_discarded_bytes : int }

let u32_at s pos =
  let byte i = Char.code s.[pos + i] in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

(* Scan the valid prefix: records from [header_len] up to the first
   frame that fails a length or CRC check.  Returns them with the byte
   offset the file should be truncated to. *)
let scan contents =
  let size = String.length contents in
  let records = ref [] in
  let pos = ref header_len in
  let stop = ref false in
  while not !stop do
    if !pos + frame_overhead + 1 > size then stop := true
    else begin
      let len = u32_at contents !pos in
      let crc = Int32.of_int (u32_at contents (!pos + 4)) in
      (* the stored crc is the low 32 bits; normalise for compare *)
      let crc = Int32.logand crc 0xFFFFFFFFl in
      if len < 1 || len > max_record_len || !pos + frame_overhead + len > size
      then stop := true
      else begin
        let body_pos = !pos + frame_overhead in
        let actual =
          Crc32.update
            (Bytes.unsafe_of_string contents)
            ~pos:body_pos ~len
        in
        if actual <> crc then stop := true
        else begin
          records :=
            {
              rtype = Char.code contents.[body_pos];
              payload = String.sub contents (body_pos + 1) (len - 1);
            }
            :: !records;
          pos := body_pos + len
        end
      end
    end
  done;
  (List.rev !records, !pos)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let read path =
  match read_file path with
  | exception Sys_error m -> Error m
  | contents ->
      if String.length contents < header_len then
        Error (Printf.sprintf "%s: missing or truncated header" path)
      else if String.sub contents 0 header_len <> magic then
        Error (Printf.sprintf "%s: foreign magic" path)
      else
        let records, valid_end = scan contents in
        Ok
          ( records,
            {
              rec_valid = List.length records;
              rec_discarded_bytes = String.length contents - valid_end;
            } )

type t = {
  t_path : string;
  fd : Unix.file_descr;
  fsync : fsync;
  mutable t_size : int;
  mutable last_sync : float;
  mutable closed : bool;
}

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let open_raw path = Unix.openfile path [ O_WRONLY; O_CREAT ] 0o644

let create ?(fsync = Never) path =
  let fd = open_raw path in
  Unix.ftruncate fd 0;
  write_all fd magic;
  {
    t_path = path;
    fd;
    fsync;
    t_size = header_len;
    last_sync = Unix.gettimeofday ();
    closed = false;
  }

let open_append ?(fsync = Never) path =
  let contents =
    match read_file path with exception Sys_error _ -> "" | c -> c
  in
  if
    String.length contents >= header_len
    && String.sub contents 0 header_len <> magic
  then failwith (Printf.sprintf "Rlog.open_append: %s: foreign magic" path);
  if String.length contents < header_len then begin
    (* missing, empty, or killed before the header hit the disk *)
    let t = create ~fsync path in
    (t, [], { rec_valid = 0; rec_discarded_bytes = String.length contents })
  end
  else begin
    let records, valid_end = scan contents in
    let discarded = String.length contents - valid_end in
    if discarded > 0 then
      Log.warn (fun m ->
          m "%s: truncating %d trailing bytes past record %d" path discarded
            (List.length records));
    let fd = open_raw path in
    Unix.ftruncate fd valid_end;
    ignore (Unix.lseek fd 0 Unix.SEEK_END);
    ( {
        t_path = path;
        fd;
        fsync;
        t_size = valid_end;
        last_sync = Unix.gettimeofday ();
        closed = false;
      },
      records,
      { rec_valid = List.length records; rec_discarded_bytes = discarded } )
  end

let frame ~rtype payload =
  if rtype < 0 || rtype > 0xFF then invalid_arg "Rlog.append: rtype";
  let len = 1 + String.length payload in
  if len > max_record_len then invalid_arg "Rlog.append: record too long";
  let b = Buffer.create (frame_overhead + len) in
  Codec.u32 b len;
  let body = Buffer.create len in
  Codec.u8 body rtype;
  Buffer.add_string body payload;
  let body = Buffer.contents body in
  Codec.u32 b
    (Int32.to_int (Crc32.string body) land 0xFFFFFFFF);
  Buffer.add_string b body;
  Buffer.contents b

let maybe_sync t =
  match t.fsync with
  | Never -> ()
  | Always -> Unix.fsync t.fd
  | Interval s ->
      let now = Unix.gettimeofday () in
      if now -. t.last_sync >= s then begin
        Unix.fsync t.fd;
        t.last_sync <- now
      end

let append t ~rtype payload =
  if t.closed then invalid_arg "Rlog.append: closed";
  let fr = frame ~rtype payload in
  write_all t.fd fr;
  t.t_size <- t.t_size + String.length fr;
  maybe_sync t

let sync t = if not t.closed then Unix.fsync t.fd

let size t = t.t_size
let path t = t.t_path

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end

let write_atomic ?fsync path records =
  let tmp = path ^ ".tmp" in
  let t = create ?fsync tmp in
  List.iter (fun (rtype, payload) -> append t ~rtype payload) records;
  sync t;
  close t;
  Sys.rename tmp path

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards MRU *)
  mutable next : ('k, 'v) node option;  (* towards LRU *)
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  cap : int;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable evicted : int;
}

let create ~cap =
  if cap <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { tbl = Hashtbl.create (min cap 64); cap; head = None; tail = None;
    evicted = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let evictions t = t.evicted
let mem t k = Hashtbl.mem t.tbl k

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some node ->
      touch t node;
      Some node.value

let drop_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.tbl node.key;
      t.evicted <- t.evicted + 1

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some node ->
      node.value <- v;
      touch t node
  | None ->
      if Hashtbl.length t.tbl >= t.cap then drop_lru t;
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k node;
      push_front t node

let fold f t acc = Hashtbl.fold (fun k node acc -> f k node.value acc) t.tbl acc

exception Closed

type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  cap : int;
  mutable closed : bool;
}

let create ~cap =
  if cap <= 0 then invalid_arg "Bqueue.create: capacity must be positive";
  { m = Mutex.create (); nonempty = Condition.create (); q = Queue.create ();
    cap; closed = false }

let capacity t = t.cap

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let length t = with_lock t (fun () -> Queue.length t.q)
let is_closed t = with_lock t (fun () -> t.closed)

let try_push t x =
  with_lock t (fun () ->
      if t.closed then raise Closed;
      if Queue.length t.q >= t.cap then `Full
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        `Pushed
      end)

let pop t =
  with_lock t (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.nonempty t.m
      done;
      if Queue.is_empty t.q then None else Some (Queue.pop t.q))

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

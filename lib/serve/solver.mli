(** The per-job solve pipeline: canonicalize → digest → cache probe →
    (on miss) exact DP on the canonical table → map the ordering back to
    the request's variable numbering.

    Solving the {e canonical} table — never the raw request — is what
    makes cache hits exact: a hit replays the stored canonical result
    through the request's own permutation, so hit and miss produce
    identical orderings, widths and costs for equal (or
    permutation-equivalent) inputs. *)

type solved = {
  digest : string;
  mincost : int;
  size : int;
  order : int array;
      (** optimal ordering, root-first, in the request's variable
          numbering *)
  widths : int array;  (** [widths.(j)] = nodes labeled [order.(j)] *)
  cached : bool;  (** answered from the cache (no DP run) *)
}

val parse_table :
  max_arity:int ->
  string ->
  (Ovo_boolfun.Truthtable.t, [ `Bad of string | `Too_large of string ]) result
(** Validate a wire table: characters ['0'|'1'], length a power of two,
    arity at most [max_arity].  Runs at admission, before any queueing. *)

val solve :
  ?trace:Ovo_obs.Trace.t ->
  ?mem_budget:int ->
  ?prune:bool ->
  ?orderer:[ `Exact | `Scored ] ->
  ?stats:Stats.t ->
  cache:Cache.t ->
  cancel:Ovo_core.Cancel.t ->
  engine:Ovo_core.Engine.t ->
  kind:Ovo_core.Compact.kind ->
  Ovo_boolfun.Truthtable.t ->
  (solved, [ `Cancelled of (int * int) option ]) result
(** [cancel] is checked before canonicalization and polled between DP
    layers inside {!Ovo_core.Fs.run}; a fired token yields
    [Error (`Cancelled bounds)] — no exception escapes.  With a
    recording [trace], the pipeline records spans [serve.canon],
    [serve.cache_probe] and (on a miss) [serve.seed] / [serve.solve],
    category ["serve"].

    [prune] (default off) seeds each cache-miss solve with a scored
    incumbent refined by sifting ({!Ovo_learn.Scorer.seeded_bound}) and
    runs the DP as an exact branch-and-bound.  The answer is
    bit-identical; additionally a
    cancelled pruned solve carries its any-time [(best_lower,
    incumbent)] pair in the [`Cancelled] payload — the tightest
    enclosure of the optimum proven before the deadline ([None] when
    pruning was off or the solve died before seeding).

    [orderer] (default [`Exact]) selects what answers a cache miss:
    [`Scored] skips the DP entirely and replies with the
    {!Ovo_learn.Scorer} static ordering (span [serve.scored]) — a valid
    ordering and its achievable cost, {e not} a proven optimum, so the
    reply is never added to the cache and a later [`Exact] solve of the
    same function is unaffected.  Cache hits still answer exactly.

    [mem_budget] caps the resident bytes of the DP's packed layers for
    this solve ({!Ovo_core.Membudget}): a budgeted miss spills completed
    layers to a fresh scratch directory under the system temp dir
    (removed when the solve finishes, even on failure) and produces a
    result bit-identical to an unbounded one.

    [stats] wires the solve into the server's telemetry: the cache
    probe feeds the hit-rate window, every completed DP layer updates
    the engine progress gauges ([ovo_dp_layer], [ovo_dp_layer_states]),
    and pruned-state / spilled-byte totals accumulate when pruning or a
    memory budget is active — including on the cancelled path. *)

(** A bounded least-recently-used map — the eviction policy of the
    ordering service's result cache.

    Plain polymorphic keys (hashed with [Hashtbl.hash]), a doubly-linked
    recency list threaded through the nodes, O(1) [find]/[add].  Not
    thread-safe: {!Cache} serialises access under its own lock. *)

type ('k, 'v) t

val create : cap:int -> ('k, 'v) t
(** [cap] must be positive. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Touches the entry: a hit becomes the most recently used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Without touching recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace (either way the entry becomes most recent).  When
    a fresh insert exceeds the capacity, the least recently used entry
    is dropped. *)

val evictions : ('k, 'v) t -> int
(** Entries dropped by capacity so far. *)

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
(** Iteration order is unspecified. *)

(** Wire protocol of the ordering service.

    The transport is newline-delimited JSON (NDJSON): each request and
    each reply is one compact JSON object on one line, encoded and
    decoded with {!Ovo_obs.Json} — the same tree every other JSON in the
    project flows through.  The full schema (field tables, error codes,
    retry semantics) is documented in [doc/service.md]; this module is
    the single OCaml source of truth for it, shared by server, client,
    and tests. *)

type addr =
  | Unix_sock of string  (** path of a Unix-domain socket *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, [ `Msg of string ]) result
(** ["unix:/path"] or any string containing ['/'] is a Unix socket;
    ["host:port"] (numeric port, no slash) is TCP; ["tcp:host:port"]
    forces TCP. *)

val addr_to_string : addr -> string
(** Inverse of {!addr_of_string} (["unix:…"] / ["host:port"]). *)

type solve_params = {
  table : string;  (** truth table as a 0/1 string, length a power of two *)
  kind : Ovo_core.Compact.kind;  (** [Bdd] (default on the wire) or [Zdd] *)
  engine : Ovo_core.Engine.t;  (** backend for this job; default [Seq] *)
  deadline_ms : float option;  (** per-job deadline; [None] = no limit *)
}

type metrics_format =
  | Mjson  (** the aggregated-telemetry JSON object *)
  | Mprom  (** Prometheus text exposition format 0.0.4, as one string *)

type op =
  | Solve of solve_params
  | Solve_many of solve_params list
      (** batch solve: the server streams one reply per item over this
          connection, in item order, each tagged with its 0-based
          ["item"] index.  Every item keeps its own deadline and goes
          through the cache exactly like a lone [Solve]. *)
  | Stats  (** server report: uptime, queue, cache, latency percentiles *)
  | Metrics of metrics_format
      (** aggregated telemetry: windows, latency distributions, engine
          gauges; wire field ["format"], default ["json"] *)
  | Ping
  | Shutdown  (** graceful: drain queued jobs, then exit *)

type request = { id : int; op : op }
(** [id] is chosen by the client and echoed verbatim in the reply, so a
    client may pipeline requests on one connection. *)

type solve_reply = {
  digest : string;  (** canonical digest used as the cache key *)
  mincost : int;
  size : int;
  order : int array;  (** optimal ordering, root-first *)
  widths : int array;  (** [widths.(j)] = nodes at level [j] *)
  cached : bool;  (** answered from the result cache *)
  queue_ms : float;  (** time spent waiting in the job queue *)
  solve_ms : float;  (** time in canonicalize + cache probe + DP *)
}

type error_code =
  | Bad_request  (** malformed JSON, bad table, unknown op *)
  | Queue_full  (** backpressure — retry after [retry_after_ms] *)
  | Too_large  (** arity above the server's [max_arity] *)
  | Shutting_down  (** server is draining; no new jobs *)
  | Shard_down
      (** (router only) every replica owning this key is unreachable *)
  | Internal

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

type response =
  | Ok_solve of solve_reply
  | Ok_stats of Ovo_obs.Json.t  (** the stats object, passed through *)
  | Ok_metrics of Ovo_obs.Json.t  (** the metrics object, passed through *)
  | Ok_prom of string  (** Prometheus exposition as one JSON string field *)
  | Pong
  | Bye  (** acknowledges [Shutdown] *)
  | Cancelled of string  (** deadline expired before/while solving *)
  | Error of {
      code : error_code;
      message : string;
      retry_after_ms : float option;  (** only with [Queue_full] *)
    }

type reply = {
  r_id : int;
  item : int option;
      (** set on each streamed [Solve_many] reply: the 0-based index of
          the batch item this reply answers; [None] everywhere else *)
  body : response;
}

val reply : ?item:int -> int -> response -> reply
(** [reply ?item r_id body] — construction shorthand. *)

(** {1 Codecs}

    [*_to_line] render one line {e without} the trailing newline;
    [*_of_line] accept a line with or without it.  Decoding is total:
    every failure comes back as [Error `Msg]. *)

val request_to_line : request -> string
val request_of_line : string -> (request, [ `Msg of string ]) result
val reply_to_line : reply -> string
val reply_of_line : string -> (reply, [ `Msg of string ]) result

(** Minimal blocking client for the NDJSON protocol — used by
    [ovo submit], [ovo bench serve], the router's shard legs, the bench
    harness and the end-to-end tests. *)

type t

val connect : ?timeout:float -> Protocol.addr -> t
(** Open a connection.  [timeout] (seconds) bounds the connection
    attempt; without it a TCP connect can block for minutes.  Raises
    [Unix.Unix_error] on failure. *)

val connect_retry :
  ?timeout:float -> ?retries:int -> ?backoff_ms:float -> Protocol.addr -> t
(** {!connect}, retried up to [retries] extra times on transient
    failures (refused, reset, missing socket file, timeout,
    unreachable) with exponential backoff starting at [backoff_ms]
    (default 50, doubling, capped at 2 s) — so a client survives a
    router or shard restart instead of failing on the first refused
    connection. *)

val send : t -> Protocol.request -> unit
(** Write one request line.  Raises [Sys_error] on a broken pipe. *)

val recv : t -> (Protocol.reply, [ `Msg of string ]) result
(** Read the next reply line.  With [Solve_many], call once per item. *)

val roundtrip : t -> Protocol.request -> (Protocol.reply, [ `Msg of string ]) result
(** [send] then [recv] — the one-reply common case. *)

val close : t -> unit

val with_conn :
  ?timeout:float ->
  ?retries:int ->
  ?backoff_ms:float ->
  Protocol.addr ->
  (t -> 'a) ->
  'a
(** Connect (with optional retry policy), run, always close. *)

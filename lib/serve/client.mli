(** A minimal blocking client for the ordering service — the engine
    behind [ovo submit] and the test suites. *)

type t

val connect : Protocol.addr -> t
(** Raises [Unix.Unix_error] if the server is not reachable. *)

val roundtrip : t -> Protocol.request -> (Protocol.reply, [ `Msg of string ]) result
(** Send one request, block for one reply line.  [Error] covers a
    dropped connection or an undecodable reply. *)

val close : t -> unit

val with_conn : Protocol.addr -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)

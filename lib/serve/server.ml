module Truthtable = Ovo_boolfun.Truthtable
module Cancel = Ovo_core.Cancel
module Trace = Ovo_obs.Trace
module Json = Ovo_obs.Json
module P = Protocol

type config = {
  listen : P.addr;
  workers : int;
  queue_cap : int;
  cache_cap : int;
  max_arity : int;
  idle_timeout : float option;
  trace_file : string option;
  store_dir : string option;
  store_fsync : Ovo_store.Rlog.fsync;
  mem_budget : int option;
  prune : bool;
}

let default_config ~listen =
  { listen; workers = 2; queue_cap = 64; cache_cap = 256; max_arity = 16;
    idle_timeout = None; trace_file = None; store_dir = None;
    store_fsync = Ovo_store.Rlog.Never; mem_budget = None; prune = false }

type job = {
  tt : Truthtable.t;
  j_kind : Ovo_core.Compact.kind;
  j_engine : Ovo_core.Engine.t;
  cancel : Cancel.t;
  enq_at : float;
  reply : P.response Ivar.t;
}

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  queue : job Bqueue.t;
  cache : Cache.t;
  store : Ovo_store.Result_store.t option;
  store_m : Mutex.t;  (* serialises WAL appends across workers *)
  stats : Stats.t;
  trace : Trace.t;
  stop : bool Atomic.t;
  pending : int Atomic.t;  (* jobs admitted whose reply is not yet written *)
  last_activity : float Atomic.t;
  mutable acceptor : Thread.t option;
  mutable worker_threads : Thread.t list;
}

let now = Trace.monotonic

(* ---------- per-connection request handling ---------- *)

let write_reply oc reply =
  output_string oc (P.reply_to_line reply);
  output_char oc '\n';
  flush oc

(* Suggested backoff before the first solve has completed: with no
   latency observed there is nothing to extrapolate from, so fall back
   to a fixed default instead of the old behaviour (the 10ms floor
   applied to a meaningless 0 average). *)
let default_retry_after_ms = 50.

(* Suggest waiting for roughly one queued job to clear; floor at 10ms.
   [`Default] marks the no-data fallback so the reply can say so. *)
let retry_after_ms t =
  match Stats.avg_ms_opt t.stats ~endpoint:"solve" with
  | Some avg -> (Float.max 10. avg, `Observed)
  | None -> (default_retry_after_ms, `Default)

(* Returns the response body plus whether the job was admitted to the
   queue ([t.pending] was raised and must drop once the reply is out). *)
let handle_solve t (p : P.solve_params) =
  if Atomic.get t.stop then
    ( P.Error
        { code = P.Shutting_down; message = "server is draining";
          retry_after_ms = None },
      false )
  else
    match Solver.parse_table ~max_arity:t.cfg.max_arity p.table with
    | Error (`Bad m) ->
        Stats.record_outcome t.stats `Error;
        ( P.Error { code = P.Bad_request; message = m; retry_after_ms = None },
          false )
    | Error (`Too_large m) ->
        Stats.record_outcome t.stats `Error;
        ( P.Error { code = P.Too_large; message = m; retry_after_ms = None },
          false )
    | Ok tt -> (
        (* the deadline clock starts at admission: queue wait counts *)
        let cancel =
          match p.deadline_ms with
          | None -> Cancel.make ()
          | Some ms -> Cancel.with_deadline (ms /. 1000.)
        in
        let job =
          { tt; j_kind = p.kind; j_engine = p.engine; cancel; enq_at = now ();
            reply = Ivar.create () }
        in
        match Bqueue.try_push t.queue job with
        | exception Bqueue.Closed ->
            ( P.Error
                { code = P.Shutting_down; message = "server is draining";
                  retry_after_ms = None },
              false )
        | `Full ->
            Stats.record_outcome t.stats `Rejected;
            let retry, basis = retry_after_ms t in
            ( P.Error
                { code = P.Queue_full;
                  message =
                    Printf.sprintf "queue is at capacity (%d jobs)%s"
                      (Bqueue.capacity t.queue)
                      (match basis with
                      | `Observed -> ""
                      | `Default ->
                          "; retry_after_ms is a fixed default (no solve \
                           latency observed yet)");
                  retry_after_ms = Some retry },
              false )
        | `Pushed ->
            (* [pending] stays raised until the reply has been written —
               the shutdown drain in [wait] keys off it *)
            Atomic.incr t.pending;
            (Ivar.read job.reply, true))

let stats_json t =
  let store =
    Option.map
      (fun s ->
        Mutex.lock t.store_m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.store_m)
          (fun () -> Ovo_store.Result_store.stats_json s))
      t.store
  in
  Stats.to_json ?store t.stats ~queue_depth:(Bqueue.length t.queue)
    ~queue_cap:(Bqueue.capacity t.queue) ~workers:t.cfg.workers
    ~cache:(Cache.to_json t.cache)

let shutdown t = Atomic.set t.stop true

let handle_request t oc ({ id; op } : P.request) =
  Atomic.set t.last_activity (now ());
  let started = now () in
  let endpoint, body, admitted =
    match op with
    | P.Ping -> ("ping", P.Pong, false)
    | P.Stats -> ("stats", P.Ok_stats (stats_json t), false)
    | P.Shutdown -> ("shutdown", P.Bye, false)
    | P.Solve p ->
        let body, admitted = handle_solve t p in
        ("solve", body, admitted)
  in
  Fun.protect
    ~finally:(fun () -> if admitted then Atomic.decr t.pending)
    (fun () ->
      Trace.with_span t.trace ~cat:"serve"
        ~args:(fun () ->
          [ ("id", Json.Int id); ("endpoint", Json.String endpoint) ])
        "serve.reply"
        (fun () -> write_reply oc { P.r_id = id; body }));
  Stats.record t.stats ~endpoint ~ms:((now () -. started) *. 1000.);
  (* reply to a shutdown request before acting on it *)
  if op = P.Shutdown then shutdown t

let conn_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> ()
        | exception Sys_error _ -> ()
        | line ->
            if String.trim line <> "" then begin
              (match P.request_of_line line with
              | Ok req ->
                  Trace.with_span t.trace ~cat:"serve"
                    ~args:(fun () -> [ ("id", Json.Int req.P.id) ])
                    "serve.request"
                    (fun () -> handle_request t oc req)
              | Error (`Msg m) ->
                  Stats.record_outcome t.stats `Error;
                  write_reply oc
                    { P.r_id = 0;
                      body =
                        P.Error
                          { code = P.Bad_request; message = m;
                            retry_after_ms = None } })
            end;
            loop ()
      in
      try loop () with Sys_error _ -> ())

(* ---------- worker pool ---------- *)

let worker_loop t =
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> ()  (* queue closed and drained *)
    | Some job ->
        let queue_ms = (now () -. job.enq_at) *. 1000. in
        Trace.instant t.trace ~cat:"serve"
          ~args:(fun () -> [ ("ms", Json.Float queue_ms) ])
          "serve.queue_wait";
        let solve_start = now () in
        let body =
          match
            Solver.solve ~trace:t.trace ~cache:t.cache ~cancel:job.cancel
              ~engine:job.j_engine ~kind:job.j_kind
              ?mem_budget:t.cfg.mem_budget ~prune:t.cfg.prune job.tt
          with
          | Ok s ->
              Stats.record_outcome t.stats (if s.cached then `Cached else `Ok);
              P.Ok_solve
                { digest = s.digest; mincost = s.mincost; size = s.size;
                  order = s.order; widths = s.widths; cached = s.cached;
                  queue_ms; solve_ms = (now () -. solve_start) *. 1000. }
          | Error (`Cancelled bounds) ->
              Stats.record_outcome t.stats `Cancelled;
              P.Cancelled
                (match bounds with
                | None -> "deadline exceeded"
                | Some (lower, upper) when upper = max_int ->
                    Printf.sprintf
                      "deadline exceeded; proven lower bound %d" lower
                | Some (lower, upper) ->
                    Printf.sprintf
                      "deadline exceeded; best-so-far bounds [%d, %d]" lower
                      upper)
          | exception e ->
              Stats.record_outcome t.stats `Error;
              P.Error
                { code = P.Internal; message = Printexc.to_string e;
                  retry_after_ms = None }
        in
        Ivar.fill job.reply body;
        loop ()
  in
  loop ()

(* ---------- listener ---------- *)

let bind_listen addr =
  let domain, sockaddr =
    match addr with
    | P.Unix_sock path ->
        (* a previous unclean exit leaves the socket file around; a live
           daemon on the same path will still fail the bind below *)
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | P.Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
        in
        (Unix.PF_INET, Unix.ADDR_INET (ip, port))
  in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | P.Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true
  | P.Unix_sock _ -> ());
  Unix.bind sock sockaddr;
  Unix.listen sock 64;
  sock

let acceptor_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else begin
      (match t.cfg.idle_timeout with
      | Some limit when now () -. Atomic.get t.last_activity > limit ->
          shutdown t
      | _ -> ());
      if Atomic.get t.stop then ()
      else
        match Unix.select [ t.lsock ] [] [] 0.25 with
        | [], _, _ -> loop ()
        | _ :: _, _, _ ->
            (match Unix.accept t.lsock with
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                Atomic.set t.last_activity (now ());
                ignore (Thread.create (fun () -> conn_loop t fd) ()));
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ()

(* ---------- lifecycle ---------- *)

let start cfg =
  let cfg = { cfg with workers = max 1 cfg.workers } in
  (* a client vanishing mid-reply must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Sys_error _ | Invalid_argument _ -> ());
  let lsock = bind_listen cfg.listen in
  let trace =
    if cfg.trace_file = None then Trace.null else Trace.make ()
  in
  let store =
    Option.map
      (fun dir ->
        Ovo_store.Result_store.open_dir ~trace ~fsync:cfg.store_fsync dir)
      cfg.store_dir
  in
  let store_m = Mutex.create () in
  let persist =
    Option.map
      (fun s ~digest ~kind (e : Cache.entry) ->
        Mutex.lock store_m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock store_m)
          (fun () ->
            Ovo_store.Result_store.append s
              { Ovo_store.Result_store.digest; kind; canon = e.Cache.canon;
                mincost = e.Cache.mincost; size = e.Cache.size;
                canon_order = e.Cache.canon_order;
                widths = e.Cache.widths }))
      store
  in
  let cache = Cache.create ~trace ?persist ~cap:(max 1 cfg.cache_cap) () in
  (* Warm-load persisted results.  [Cache.warm] skips the persist hook —
     these entries came from the store — and the normal digest-plus-
     equality probe still guards every later hit, so a record the store
     failed to catch degrades to a miss, not a wrong answer. *)
  let warm_loaded =
    match store with
    | None -> 0
    | Some s ->
        let entries = Ovo_store.Result_store.entries s in
        List.iter
          (fun (e : Ovo_store.Result_store.entry) ->
            Cache.warm cache ~digest:e.digest ~kind:e.kind
              { Cache.canon = e.canon; mincost = e.mincost; size = e.size;
                canon_order = e.canon_order; widths = e.widths })
          entries;
        List.length entries
  in
  if warm_loaded > 0 then
    Printf.eprintf "[ovo-serve] warm-loaded %d cached result%s from %s\n%!"
      warm_loaded
      (if warm_loaded = 1 then "" else "s")
      (Option.value cfg.store_dir ~default:"");
  let t =
    { cfg; lsock; queue = Bqueue.create ~cap:(max 1 cfg.queue_cap);
      cache; store; store_m;
      stats = Stats.create (); trace; stop = Atomic.make false;
      pending = Atomic.make 0; last_activity = Atomic.make (now ());
      acceptor = None; worker_threads = [] }
  in
  t.worker_threads <-
    List.init cfg.workers (fun _ -> Thread.create worker_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

let wait t =
  (* phase 1: sit until someone initiates shutdown *)
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done;
  (* phase 2: stop intake, drain, tear down *)
  Option.iter Thread.join t.acceptor;
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  let drained = Bqueue.length t.queue in
  Bqueue.close t.queue;
  List.iter Thread.join t.worker_threads;
  (* workers have filled every ivar; give connection threads (which we
     never join — they may be parked on idle clients) a bounded window
     to write the drained replies *)
  let deadline = now () +. 5. in
  while Atomic.get t.pending > 0 && now () < deadline do
    Thread.delay 0.01
  done;
  (* workers are done: no more appends — sync and close the store *)
  Option.iter Ovo_store.Result_store.close t.store;
  (match t.cfg.listen with
  | P.Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | P.Tcp _ -> ());
  (match t.cfg.trace_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      (if Filename.check_suffix path ".jsonl" then
         Ovo_obs.Export.write_jsonl oc t.trace
       else Ovo_obs.Export.write_chrome oc t.trace);
      close_out oc;
      Printf.eprintf "[ovo-serve] trace written: %s (%d events)\n%!" path
        (Trace.event_count t.trace));
  Printf.eprintf "[ovo-serve] shutdown: drained %d queued job%s\n%!" drained
    (if drained = 1 then "" else "s");
  Printf.eprintf "[ovo-serve] final stats: %s\n%!" (Json.to_string (stats_json t))

let run cfg =
  let t = start cfg in
  let stop_signal _ = shutdown t in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal)
   with Sys_error _ | Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal)
   with Sys_error _ | Invalid_argument _ -> ());
  Printf.eprintf "[ovo-serve] listening on %s (%d workers, queue %d, cache %d)\n%!"
    (P.addr_to_string cfg.listen) (max 1 cfg.workers) cfg.queue_cap
    cfg.cache_cap;
  wait t

module Truthtable = Ovo_boolfun.Truthtable
module Cancel = Ovo_core.Cancel
module Trace = Ovo_obs.Trace
module Json = Ovo_obs.Json
module P = Protocol

type prom_sink = Prom_export.sink =
  | Prom_file of string
  | Prom_addr of P.addr

let prom_sink_of_string = Prom_export.sink_of_string
let prom_sink_to_string = Prom_export.sink_to_string

type config = {
  listen : P.addr;
  workers : int;
  queue_cap : int;
  cache_cap : int;
  max_arity : int;
  idle_timeout : float option;
  trace_file : string option;
  store_dir : string option;
  store_fsync : Ovo_store.Rlog.fsync;
  mem_budget : int option;
  prune : bool;
  orderer : [ `Exact | `Scored ];
  access_log : string option;
  prom : prom_sink option;
  telemetry : bool;
  shard_id : string option;
}

let default_config ~listen =
  { listen; workers = 2; queue_cap = 64; cache_cap = 256; max_arity = 16;
    idle_timeout = None; trace_file = None; store_dir = None;
    store_fsync = Ovo_store.Rlog.Never; mem_budget = None; prune = false;
    orderer = `Exact; access_log = None; prom = None; telemetry = true;
    shard_id = None }

type job = {
  j_id : int;  (* server-assigned sequence number, for the access log *)
  tt : Truthtable.t;
  j_kind : Ovo_core.Compact.kind;
  j_engine : Ovo_core.Engine.t;
  cancel : Cancel.t;
  enq_at : float;
  reply : P.response Ivar.t;
}

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  queue : job Bqueue.t;
  cache : Cache.t;
  store : Ovo_store.Result_store.t option;
  store_m : Mutex.t;  (* serialises WAL appends across workers *)
  stats : Stats.t;
  trace : Trace.t;
  mutable alog : Access_log.t option;  (* [None] once closed in [wait] *)
  alog_m : Mutex.t;  (* serialises access-log appends across workers *)
  req_seq : int Atomic.t;
  stop : bool Atomic.t;
  pending : int Atomic.t;  (* jobs admitted whose reply is not yet written *)
  last_activity : float Atomic.t;
  mutable acceptor : Thread.t option;
  mutable worker_threads : Thread.t list;
  mutable prom_export : Prom_export.t option;
}

let now = Trace.monotonic

(* ---------- per-connection request handling ---------- *)

let write_reply oc reply =
  output_string oc (P.reply_to_line reply);
  output_char oc '\n';
  flush oc

(* Suggested backoff before the first solve has completed: with no
   solve duration observed there is nothing to extrapolate from, so
   fall back to a fixed default (and say so in the reply). *)
let default_retry_after_ms = 50.

(* Suggest waiting for roughly one median solve to clear; floor at
   10ms.  The estimate comes from the solve-duration histogram the
   workers feed — actual time spent solving — not the request-handling
   latency the old code extrapolated from (which for admitted solves
   measures only parse + enqueue, a wild underestimate under load).
   [`Default] marks the no-data fallback so the reply can say so. *)
let retry_after_ms t =
  match Stats.solve_ms_p50 t.stats with
  | Some p50 -> (Float.max 10. p50, `Observed)
  | None -> (default_retry_after_ms, `Default)

let log_access t entry =
  Mutex.lock t.alog_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.alog_m)
    (fun () ->
      match t.alog with
      | None -> ()  (* not configured, or already closed during drain *)
      | Some log -> Access_log.append log entry)

let access_entry t ?(digest = "") ?(cached = false) ?(queue_ms = 0.)
    ?(solve_ms = 0.) ?(lower = -1) ?(upper = -1) ?(detail = "") ~req_id
    ~outcome () =
  { Access_log.at = Unix.gettimeofday (); req_id; endpoint = "solve";
    outcome; digest; cached; queue_ms; solve_ms; lower; upper; detail;
    shard = Option.value t.cfg.shard_id ~default:"" }

(* Admission result of one solve: [Done] replies immediately (reject,
   parse error, shutdown); [Queued] means the job is in the queue with
   [t.pending] raised — the caller must read the ivar and then drop
   [pending] once the reply is out.  Splitting admission from the
   (blocking) ivar read lets [Solve_many] admit a whole batch to the
   worker pool before waiting on any item. *)
type admission = Done of P.response | Queued of job

let admit_solve t (p : P.solve_params) =
  let req_id = Atomic.fetch_and_add t.req_seq 1 in
  if Atomic.get t.stop then
    Done
      (P.Error
         { code = P.Shutting_down; message = "server is draining";
           retry_after_ms = None })
  else
    match Solver.parse_table ~max_arity:t.cfg.max_arity p.table with
    | Error (`Bad m) ->
        Stats.record_outcome t.stats `Error;
        log_access t (access_entry t ~req_id ~outcome:"error" ~detail:m ());
        Done (P.Error { code = P.Bad_request; message = m; retry_after_ms = None })
    | Error (`Too_large m) ->
        Stats.record_outcome t.stats `Error;
        log_access t (access_entry t ~req_id ~outcome:"error" ~detail:m ());
        Done (P.Error { code = P.Too_large; message = m; retry_after_ms = None })
    | Ok tt -> (
        (* the deadline clock starts at admission: queue wait counts *)
        let cancel =
          match p.deadline_ms with
          | None -> Cancel.make ()
          | Some ms -> Cancel.with_deadline (ms /. 1000.)
        in
        let job =
          { j_id = req_id; tt; j_kind = p.kind; j_engine = p.engine; cancel;
            enq_at = now (); reply = Ivar.create () }
        in
        match Bqueue.try_push t.queue job with
        | exception Bqueue.Closed ->
            Done
              (P.Error
                 { code = P.Shutting_down; message = "server is draining";
                   retry_after_ms = None })
        | `Full ->
            Stats.record_outcome t.stats `Rejected;
            log_access t
              (access_entry t ~req_id ~outcome:"rejected"
                 ~detail:"queue_full" ());
            let retry, basis = retry_after_ms t in
            Done
              (P.Error
                 { code = P.Queue_full;
                   message =
                     Printf.sprintf "queue is at capacity (%d jobs)%s"
                       (Bqueue.capacity t.queue)
                       (match basis with
                       | `Observed -> ""
                       | `Default ->
                           "; retry_after_ms is a fixed default (no solve \
                            latency observed yet)");
                   retry_after_ms = Some retry })
        | `Pushed ->
            (* [pending] stays raised until the reply has been written —
               the shutdown drain in [wait] keys off it *)
            Atomic.incr t.pending;
            Queued job)

let stats_json t =
  let store =
    Option.map
      (fun s ->
        Mutex.lock t.store_m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.store_m)
          (fun () -> Ovo_store.Result_store.stats_json s))
      t.store
  in
  Stats.to_json ?store t.stats ~queue_depth:(Bqueue.length t.queue)
    ~queue_cap:(Bqueue.capacity t.queue) ~workers:t.cfg.workers
    ~cache:(Cache.to_json t.cache)

(* Refresh the point-in-time gauges right before any exposition so a
   scrape never reads stale queue/cache numbers. *)
let refresh_live t =
  Stats.sample_gc t.stats;
  Stats.set_live t.stats ~queue_depth:(Bqueue.length t.queue)
    ~queue_cap:(Bqueue.capacity t.queue) ~workers:t.cfg.workers
    ~cache_entries:(Cache.length t.cache) ~cache_hits:(Cache.hits t.cache)
    ~cache_misses:(Cache.misses t.cache)
    ~cache_evictions:(Cache.evictions t.cache)

let metrics_json t =
  refresh_live t;
  Stats.metrics_json t.stats

let prom_text t =
  refresh_live t;
  Stats.prom t.stats

let shutdown t = Atomic.set t.stop true

let handle_request t oc ({ id; op } : P.request) =
  Atomic.set t.last_activity (now ());
  let started = now () in
  let endpoint =
    match op with
    | P.Ping -> "ping"
    | P.Stats -> "stats"
    | P.Metrics _ -> "metrics"
    | P.Shutdown -> "shutdown"
    | P.Solve _ -> "solve"
    | P.Solve_many _ -> "solve_many"
  in
  let write ?item body =
    Trace.with_span t.trace ~cat:"serve"
      ~args:(fun () ->
        [ ("id", Json.Int id); ("endpoint", Json.String endpoint) ])
      "serve.reply"
      (fun () -> write_reply oc (P.reply ?item id body))
  in
  let finish ?item = function
    | Done body -> write ?item body
    | Queued job ->
        Fun.protect
          ~finally:(fun () -> Atomic.decr t.pending)
          (fun () -> write ?item (Ivar.read job.reply))
  in
  (match op with
  | P.Ping -> write P.Pong
  | P.Stats -> write (P.Ok_stats (stats_json t))
  | P.Metrics P.Mjson -> write (P.Ok_metrics (metrics_json t))
  | P.Metrics P.Mprom -> write (P.Ok_prom (prom_text t))
  | P.Shutdown -> write P.Bye
  | P.Solve p -> finish (admit_solve t p)
  | P.Solve_many [] ->
      write
        (P.Error
           { code = P.Bad_request; message = "solve_many: empty items";
             retry_after_ms = None })
  | P.Solve_many items ->
      (* admit the whole batch before blocking on any item so it runs
         across the worker pool instead of serialising; replies then
         stream back in item order regardless of completion order *)
      let admissions = List.map (admit_solve t) items in
      List.iteri (fun k a -> finish ~item:k a) admissions);
  Stats.record t.stats ~endpoint ~ms:((now () -. started) *. 1000.);
  (* reply to a shutdown request before acting on it *)
  if op = P.Shutdown then shutdown t

let conn_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> ()
        | exception Sys_error _ -> ()
        | line ->
            if String.trim line <> "" then begin
              (match P.request_of_line line with
              | Ok req ->
                  Trace.with_span t.trace ~cat:"serve"
                    ~args:(fun () -> [ ("id", Json.Int req.P.id) ])
                    "serve.request"
                    (fun () -> handle_request t oc req)
              | Error (`Msg m) ->
                  Stats.record_outcome t.stats `Error;
                  write_reply oc
                    (P.reply 0
                       (P.Error
                          { code = P.Bad_request; message = m;
                            retry_after_ms = None })))
            end;
            loop ()
      in
      try loop () with Sys_error _ -> ())

(* ---------- worker pool ---------- *)

let worker_loop t =
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> ()  (* queue closed and drained *)
    | Some job ->
        let queue_ms = (now () -. job.enq_at) *. 1000. in
        Trace.instant t.trace ~cat:"serve"
          ~args:(fun () -> [ ("ms", Json.Float queue_ms) ])
          "serve.queue_wait";
        if t.cfg.telemetry then Stats.record_queue_wait_ms t.stats queue_ms;
        Stats.worker_busy t.stats;
        let solve_start = now () in
        let stats = if t.cfg.telemetry then Some t.stats else None in
        let body, entry =
          match
            Solver.solve ~trace:t.trace ?stats ~cache:t.cache
              ~cancel:job.cancel ~engine:job.j_engine ~kind:job.j_kind
              ?mem_budget:t.cfg.mem_budget ~prune:t.cfg.prune
              ~orderer:t.cfg.orderer job.tt
          with
          | Ok s ->
              let solve_ms = (now () -. solve_start) *. 1000. in
              Stats.record_outcome t.stats (if s.cached then `Cached else `Ok);
              if t.cfg.telemetry then Stats.record_solve_ms t.stats solve_ms;
              ( P.Ok_solve
                  { digest = s.digest; mincost = s.mincost; size = s.size;
                    order = s.order; widths = s.widths; cached = s.cached;
                    queue_ms; solve_ms },
                access_entry t ~req_id:job.j_id
                  ~outcome:(if s.cached then "cached" else "ok")
                  ~digest:s.digest ~cached:s.cached ~queue_ms ~solve_ms
                  ~lower:s.mincost ~upper:s.mincost () )
          | Error (`Cancelled bounds) ->
              let solve_ms = (now () -. solve_start) *. 1000. in
              Stats.record_outcome t.stats `Cancelled;
              let message =
                match bounds with
                | None -> "deadline exceeded"
                | Some (lower, upper) when upper = max_int ->
                    Printf.sprintf
                      "deadline exceeded; proven lower bound %d" lower
                | Some (lower, upper) ->
                    Printf.sprintf
                      "deadline exceeded; best-so-far bounds [%d, %d]" lower
                      upper
              in
              let lower, upper =
                match bounds with
                | None -> (-1, -1)
                | Some (l, u) -> (l, (if u = max_int then -1 else u))
              in
              ( P.Cancelled message,
                access_entry t ~req_id:job.j_id ~outcome:"cancelled" ~queue_ms
                  ~solve_ms ~lower ~upper ~detail:message () )
          | exception e ->
              let solve_ms = (now () -. solve_start) *. 1000. in
              Stats.record_outcome t.stats `Error;
              let message = Printexc.to_string e in
              ( P.Error
                  { code = P.Internal; message; retry_after_ms = None },
                access_entry t ~req_id:job.j_id ~outcome:"error" ~queue_ms
                  ~solve_ms ~detail:message () )
        in
        Stats.worker_idle t.stats;
        log_access t entry;
        Ivar.fill job.reply body;
        loop ()
  in
  loop ()

(* ---------- listener ---------- *)

let acceptor_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else begin
      (match t.cfg.idle_timeout with
      | Some limit when now () -. Atomic.get t.last_activity > limit ->
          shutdown t
      | _ -> ());
      if Atomic.get t.stop then ()
      else
        match Unix.select [ t.lsock ] [] [] 0.25 with
        | [], _, _ -> loop ()
        | _ :: _, _, _ ->
            (match Unix.accept t.lsock with
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                Atomic.set t.last_activity (now ());
                ignore (Thread.create (fun () -> conn_loop t fd) ()));
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ()

(* ---------- lifecycle ---------- *)

let start cfg =
  let cfg = { cfg with workers = max 1 cfg.workers } in
  (* a client vanishing mid-reply must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Sys_error _ | Invalid_argument _ -> ());
  let lsock = Net.bind_listen cfg.listen in
  let trace =
    if cfg.trace_file = None then Trace.null else Trace.make ()
  in
  let store =
    Option.map
      (fun dir ->
        Ovo_store.Result_store.open_dir ~trace ~fsync:cfg.store_fsync dir)
      cfg.store_dir
  in
  let store_m = Mutex.create () in
  let persist =
    Option.map
      (fun s ~digest ~kind (e : Cache.entry) ->
        Mutex.lock store_m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock store_m)
          (fun () ->
            Ovo_store.Result_store.append s
              { Ovo_store.Result_store.digest; kind; canon = e.Cache.canon;
                mincost = e.Cache.mincost; size = e.Cache.size;
                canon_order = e.Cache.canon_order;
                widths = e.Cache.widths }))
      store
  in
  let cache = Cache.create ~trace ?persist ~cap:(max 1 cfg.cache_cap) () in
  (* Warm-load persisted results.  [Cache.warm] skips the persist hook —
     these entries came from the store — and the normal digest-plus-
     equality probe still guards every later hit, so a record the store
     failed to catch degrades to a miss, not a wrong answer. *)
  let warm_loaded =
    match store with
    | None -> 0
    | Some s ->
        let entries = Ovo_store.Result_store.entries s in
        List.iter
          (fun (e : Ovo_store.Result_store.entry) ->
            Cache.warm cache ~digest:e.digest ~kind:e.kind
              { Cache.canon = e.canon; mincost = e.mincost; size = e.size;
                canon_order = e.canon_order; widths = e.widths })
          entries;
        List.length entries
  in
  if warm_loaded > 0 then
    Printf.eprintf "[ovo-serve] warm-loaded %d cached result%s from %s\n%!"
      warm_loaded
      (if warm_loaded = 1 then "" else "s")
      (Option.value cfg.store_dir ~default:"");
  let alog =
    Option.map
      (fun path ->
        let log, existing = Access_log.open_append path in
        if existing > 0 then
          Printf.eprintf
            "[ovo-serve] access log %s: %d existing entr%s\n%!" path existing
            (if existing = 1 then "y" else "ies");
        log)
      cfg.access_log
  in
  let t =
    { cfg; lsock; queue = Bqueue.create ~cap:(max 1 cfg.queue_cap);
      cache; store; store_m;
      stats = Stats.create (); trace; alog; alog_m = Mutex.create ();
      req_seq = Atomic.make 0; stop = Atomic.make false;
      pending = Atomic.make 0; last_activity = Atomic.make (now ());
      acceptor = None; worker_threads = []; prom_export = None }
  in
  t.worker_threads <-
    List.init cfg.workers (fun _ -> Thread.create worker_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t.prom_export <-
    Some
      (Prom_export.start ~sink:cfg.prom
         ~render:(fun () -> prom_text t)
         ~refresh:(fun () -> refresh_live t)
         ());
  t

let wait t =
  (* phase 1: sit until someone initiates shutdown *)
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done;
  (* phase 2: stop intake, drain, tear down *)
  Option.iter Thread.join t.acceptor;
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  let drained = Bqueue.length t.queue in
  Bqueue.close t.queue;
  List.iter Thread.join t.worker_threads;
  (* workers have filled every ivar; give connection threads (which we
     never join — they may be parked on idle clients) a bounded window
     to write the drained replies *)
  let deadline = now () +. 5. in
  while Atomic.get t.pending > 0 && now () < deadline do
    Thread.delay 0.01
  done;
  (* join the exporter threads, then write the final prom snapshot —
     {!Prom_export.stop_and_flush} owns that ordering, so after this
     line the exposition file can never be rewritten again *)
  Option.iter Prom_export.stop_and_flush t.prom_export;
  (* flush and CRC-close the access log; late stragglers see [None] *)
  Mutex.lock t.alog_m;
  (match t.alog with
  | None -> ()
  | Some log ->
      t.alog <- None;
      Access_log.close log);
  Mutex.unlock t.alog_m;
  (* workers are done: no more appends — sync and close the store *)
  Option.iter Ovo_store.Result_store.close t.store;
  (match t.cfg.listen with
  | P.Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | P.Tcp _ -> ());
  (match t.cfg.trace_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      (if Filename.check_suffix path ".jsonl" then
         Ovo_obs.Export.write_jsonl oc t.trace
       else Ovo_obs.Export.write_chrome oc t.trace);
      close_out oc;
      Printf.eprintf "[ovo-serve] trace written: %s (%d events)\n%!" path
        (Trace.event_count t.trace));
  Printf.eprintf "[ovo-serve] shutdown: drained %d queued job%s\n%!" drained
    (if drained = 1 then "" else "s");
  Printf.eprintf "[ovo-serve] final stats: %s\n%!" (Json.to_string (stats_json t))

let run cfg =
  let t = start cfg in
  let stop_signal _ = shutdown t in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal)
   with Sys_error _ | Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal)
   with Sys_error _ | Invalid_argument _ -> ());
  Printf.eprintf "[ovo-serve] listening on %s (%d workers, queue %d, cache %d)\n%!"
    (P.addr_to_string cfg.listen) (max 1 cfg.workers) cfg.queue_cap
    cfg.cache_cap;
  wait t

(** The ordering daemon: socket listener, connection threads, bounded
    job queue, worker pool, result cache, and graceful shutdown.

    Thread topology: one acceptor thread multiplexes the listening
    socket with a [select] timeout so it can notice the stop flag; each
    accepted connection gets its own thread that parses NDJSON requests,
    admits solve jobs to the {!Bqueue} (rejecting with [queue_full] +
    [retry_after_ms] under backpressure) and blocks on the job's
    {!Ivar} for the reply; [workers] pool threads pop jobs and run
    {!Solver.solve} on the configured engine, honouring each job's
    deadline via {!Ovo_core.Cancel}.

    Shutdown (a [shutdown] request, {!shutdown}, or — under {!run} —
    SIGINT/SIGTERM) is graceful: the acceptor stops, the queue closes
    (late solves get [shutting_down]), already-accepted jobs drain
    through the workers, their replies are flushed, and a final stats
    report (plus the trace file, if recording) is written. *)

type prom_sink = Prom_export.sink =
  | Prom_file of string
      (** rewrite the exposition to this path (tmp + rename, so readers
          never see a torn file) every second and once at shutdown *)
  | Prom_addr of Protocol.addr
      (** serve the exposition over one-shot HTTP responses on this
          address — enough for a Prometheus scrape loop or [curl] *)

val prom_sink_of_string : string -> (prom_sink, [ `Msg of string ]) result
(** A spec containing ['/'] is a file path; a parseable [host:port] is
    a scrape address; a bare word is a file in the current directory. *)

val prom_sink_to_string : prom_sink -> string

type config = {
  listen : Protocol.addr;
  workers : int;  (** worker pool size; [<= 0] means 1 *)
  queue_cap : int;  (** bounded queue depth before backpressure *)
  cache_cap : int;  (** LRU result-cache entries *)
  max_arity : int;  (** solve requests above this get [too_large] *)
  idle_timeout : float option;
      (** seconds without any request before the server shuts itself
          down — a safety net for scripted runs *)
  trace_file : string option;
      (** record every request's spans; written at shutdown
          ([.jsonl] → JSON-lines, else Chrome trace_event — the same
          rule as the CLI [--trace]) *)
  store_dir : string option;
      (** durable result store directory ({!Ovo_store.Result_store}):
          opened and recovered at {!start}, its surviving entries
          warm-loaded into the cache, every cache insert appended to its
          WAL, synced and closed at shutdown.  [None] (the default) runs
          purely in memory. *)
  store_fsync : Ovo_store.Rlog.fsync;
      (** fsync policy for the store's WAL (default
          {!Ovo_store.Rlog.Never}; appends survive process death
          regardless — this only matters for machine crashes) *)
  mem_budget : int option;
      (** byte cap on each solve's resident DP layers
          ({!Ovo_core.Membudget}): past it, completed layers spill to a
          per-job scratch directory and the daemon degrades to
          out-of-core instead of growing without bound.  [None] (the
          default) runs unbounded. *)
  prune : bool;
      (** run each cache-miss solve as a sifting-seeded exact
          branch-and-bound ({!Solver.solve}): identical answers, fewer
          states, and deadline-cancelled replies carry the best-so-far
          [(lower, incumbent)] bound pair in their message.  Default
          off. *)
  orderer : [ `Exact | `Scored ];
      (** [`Exact] (the default) runs the exact DP on every cache miss.
          [`Scored] answers misses with the [ovo.learn] scored static
          ordering instead: a valid ordering and its achievable cost in
          heuristic time, but not a proven optimum — so scored answers
          are never inserted into the cache or the durable store, and
          exact cached results still win on a probe hit. *)
  access_log : string option;
      (** CRC-framed structured access log ({!Access_log}): one entry
          per solve request with digest, outcome, queue wait, solve
          duration, cache hit and bound window.  Reopening recovers a
          torn tail exactly like the result store.  [None] (default)
          logs nothing. *)
  prom : prom_sink option;
      (** Prometheus exposition sink, refreshed by the 1 s ticker
          (file) or served per scrape (address).  [None] (default)
          exports nothing — the [metrics] op still answers. *)
  telemetry : bool;
      (** per-request instrument updates (latency histograms, windows,
          engine gauges).  Default on; [false] exists so the benchmark
          can measure the instrumented/uninstrumented overhead ratio.
          Outcome counters and the [stats] endpoint stay on
          regardless. *)
  shard_id : string option;
      (** fleet identity ([ovo serve --shard-id]): stamped on every
          access-log entry so fleet-wide logs can be merged and
          attributed.  [None] (the default) leaves entries in the
          pre-fleet wire format. *)
}

val default_config : listen:Protocol.addr -> config
(** 2 workers, queue 64, cache 256, max arity 16, no idle timeout, no
    trace, no store, no memory budget, no pruning, exact orderer, no
    access log, no Prometheus sink, telemetry on, no shard id. *)

type t

val start : config -> t
(** Bind, listen, spawn acceptor and workers, return immediately.
    Raises [Unix.Unix_error] if the address cannot be bound (a stale
    Unix-socket file from a previous run is removed first). *)

val stats_json : t -> Ovo_obs.Json.t
(** Live snapshot — what the [stats] endpoint returns. *)

val metrics_json : t -> Ovo_obs.Json.t
(** Aggregated telemetry — what the [metrics] endpoint returns
    ({!Stats.metrics_json} after refreshing the live gauges). *)

val prom_text : t -> string
(** The Prometheus exposition — what [--prom] exports and what the
    [metrics] op answers in [prometheus] format. *)

val shutdown : t -> unit
(** Initiate graceful shutdown (idempotent, non-blocking); {!wait}
    performs the actual drain. *)

val wait : t -> unit
(** Block until shutdown is initiated, then drain and tear down: join
    the acceptor and workers, flush pending replies, close the listener
    (unlinking a Unix-socket path), write the trace file, and print the
    final stats line to stderr. *)

val run : config -> unit
(** [start], install SIGINT/SIGTERM handlers that {!shutdown}, print a
    ready line to stderr, and {!wait}. *)

module Json = Ovo_obs.Json
module R = Ovo_metrics.Registry
module Histo = Ovo_metrics.Histo
module Window = Ovo_metrics.Window

type endpoint_h = { e_requests : R.counter; e_hist : R.histogram }

type t = {
  clock : unit -> float;
  started : float;
  reg : R.t;
  m : Mutex.t;  (* guards [endpoints] growth only *)
  endpoints : (string, endpoint_h) Hashtbl.t;
  (* outcome counters *)
  ok : R.counter;
  cached : R.counter;
  cancelled : R.counter;
  rejected : R.counter;
  errors : R.counter;
  (* solve-path histograms *)
  solve_hist : R.histogram;
  queue_wait_hist : R.histogram;
  (* rolling windows *)
  req_win : Window.t;
  probe_win : Window.t;  (* value 1. on cache hit, 0. on miss *)
  (* point-in-time gauges *)
  g_uptime : R.gauge;
  g_queue_depth : R.gauge;
  g_queue_cap : R.gauge;
  g_workers : R.gauge;
  g_workers_busy : R.gauge;
  g_cache_entries : R.gauge;
  g_cache_hits : R.gauge;
  g_cache_misses : R.gauge;
  g_cache_evictions : R.gauge;
  g_layer : R.gauge;
  g_layer_states : R.gauge;
  c_pruned : R.counter;
  c_spill_bytes : R.counter;
  g_gc_heap_words : R.gauge;
  g_gc_major : R.gauge;
  g_rss : R.gauge;
  busy : int Atomic.t;
}

(* Pre-registered so the exposition's name and label-set order never
   depends on which request arrived first. *)
let known_endpoints =
  [ "ping"; "solve"; "solve_many"; "stats"; "metrics"; "shutdown" ]
let outcome_labels = [ "ok"; "cached"; "cancelled"; "rejected"; "errors" ]

let make_endpoint reg name =
  { e_requests =
      R.counter reg ~help:"Requests handled, by endpoint"
        ~labels:[ ("endpoint", name) ]
        "ovo_requests_total";
    e_hist =
      R.histogram reg ~help:"Request handling latency, by endpoint"
        ~labels:[ ("endpoint", name) ]
        "ovo_request_duration_ms" }

let create ?(clock = Ovo_obs.Trace.monotonic) () =
  let reg = R.create () in
  let g_uptime =
    R.gauge reg ~help:"Seconds since daemon start" "ovo_uptime_seconds"
  in
  let endpoints = Hashtbl.create 8 in
  List.iter
    (fun name -> Hashtbl.add endpoints name (make_endpoint reg name))
    known_endpoints;
  let outcome name =
    R.counter reg ~help:"Solve outcomes" ~labels:[ ("outcome", name) ]
      "ovo_outcomes_total"
  in
  let counters = List.map outcome outcome_labels in
  let nth = List.nth counters in
  { clock; started = clock (); reg; m = Mutex.create (); endpoints;
    g_uptime;
    ok = nth 0; cached = nth 1; cancelled = nth 2; rejected = nth 3;
    errors = nth 4;
    solve_hist =
      R.histogram reg ~help:"Solve duration (cache hits included)"
        "ovo_solve_duration_ms";
    queue_wait_hist =
      R.histogram reg ~help:"Admission-to-worker queue wait"
        "ovo_queue_wait_ms";
    req_win = Window.create ~clock ();
    probe_win = Window.create ~clock ();
    g_queue_depth = R.gauge reg ~help:"Jobs waiting in the queue" "ovo_queue_depth";
    g_queue_cap = R.gauge reg ~help:"Queue capacity" "ovo_queue_capacity";
    g_workers = R.gauge reg ~help:"Worker pool size" "ovo_workers";
    g_workers_busy =
      R.gauge reg ~help:"Workers currently solving" "ovo_workers_busy";
    g_cache_entries =
      R.gauge reg ~help:"Result-cache entries" "ovo_cache_entries";
    g_cache_hits = R.gauge reg ~help:"Result-cache hits" "ovo_cache_hits";
    g_cache_misses = R.gauge reg ~help:"Result-cache misses" "ovo_cache_misses";
    g_cache_evictions =
      R.gauge reg ~help:"Result-cache evictions" "ovo_cache_evictions";
    g_layer =
      R.gauge reg ~help:"Last completed DP cardinality layer" "ovo_dp_layer";
    g_layer_states =
      R.gauge reg ~help:"States kept by the last completed DP layer"
        "ovo_dp_layer_states";
    c_pruned =
      R.counter reg ~help:"DP states pruned by branch-and-bound"
        "ovo_dp_states_pruned_total";
    c_spill_bytes =
      R.counter reg ~help:"Bytes of DP layers spilled out of core"
        "ovo_spill_bytes_total";
    g_gc_heap_words = R.gauge reg ~help:"OCaml heap words" "ovo_gc_heap_words";
    g_gc_major =
      R.gauge reg ~help:"Completed major GC collections"
        "ovo_gc_major_collections";
    g_rss =
      R.gauge reg ~help:"Resident set size in bytes (0 where unsupported)"
        "ovo_process_resident_bytes";
    busy = Atomic.make 0 }

let registry t = t.reg

let endpoint_of t name =
  match Hashtbl.find_opt t.endpoints name with
  | Some e -> e
  | None ->
      Mutex.lock t.m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.m)
        (fun () ->
          match Hashtbl.find_opt t.endpoints name with
          | Some e -> e
          | None ->
              let e = make_endpoint t.reg name in
              Hashtbl.add t.endpoints name e;
              e)

let record t ~endpoint ~ms =
  let e = endpoint_of t endpoint in
  R.inc e.e_requests 1;
  R.observe e.e_hist ms;
  Window.add t.req_win ms

let record_outcome t outcome =
  match outcome with
  | `Ok -> R.inc t.ok 1
  | `Cached ->
      R.inc t.ok 1;
      R.inc t.cached 1
  | `Cancelled -> R.inc t.cancelled 1
  | `Rejected -> R.inc t.rejected 1
  | `Error -> R.inc t.errors 1

let uptime_s t = t.clock () -. t.started

let snap_of t endpoint =
  match Hashtbl.find_opt t.endpoints endpoint with
  | None -> Histo.empty
  | Some e -> R.histogram_snapshot e.e_hist

let avg_ms_opt t ~endpoint = Histo.mean (snap_of t endpoint)
let avg_ms t ~endpoint = Option.value (avg_ms_opt t ~endpoint) ~default:0.
let percentile t ~endpoint q = Histo.quantile (snap_of t endpoint) q

(* ---------- solve-path instruments ---------- *)

let record_solve_ms t ms = R.observe t.solve_hist ms

let solve_ms_p50 t =
  Histo.quantile (R.histogram_snapshot t.solve_hist) 0.5

let record_queue_wait_ms t ms = R.observe t.queue_wait_hist ms
let note_probe t ~hit = Window.add t.probe_win (if hit then 1. else 0.)

let note_layer t ~layer ~states =
  R.set t.g_layer (float_of_int layer);
  R.set t.g_layer_states (float_of_int states)

let add_pruned t n = if n > 0 then R.inc t.c_pruned n
let add_spill_bytes t n = if n > 0 then R.inc t.c_spill_bytes n
let worker_busy t = Atomic.incr t.busy
let worker_idle t = Atomic.decr t.busy
let workers_busy t = Atomic.get t.busy

let page_size = 4096

let rss_bytes () =
  try
    let ic = open_in "/proc/self/statm" in
    let line = input_line ic in
    close_in ic;
    match String.split_on_char ' ' line with
    | _ :: resident :: _ -> (
        match int_of_string_opt resident with
        | Some pages -> pages * page_size
        | None -> 0)
    | _ -> 0
  with Sys_error _ | End_of_file -> 0

let sample_gc t =
  let st = Gc.quick_stat () in
  R.set t.g_gc_heap_words (float_of_int st.Gc.heap_words);
  R.set t.g_gc_major (float_of_int st.Gc.major_collections);
  R.set t.g_rss (float_of_int (rss_bytes ()))

let set_live t ~queue_depth ~queue_cap ~workers ~cache_entries ~cache_hits
    ~cache_misses ~cache_evictions =
  R.set t.g_uptime (uptime_s t);
  R.set t.g_queue_depth (float_of_int queue_depth);
  R.set t.g_queue_cap (float_of_int queue_cap);
  R.set t.g_workers (float_of_int workers);
  R.set t.g_workers_busy (float_of_int (Atomic.get t.busy));
  R.set t.g_cache_entries (float_of_int cache_entries);
  R.set t.g_cache_hits (float_of_int cache_hits);
  R.set t.g_cache_misses (float_of_int cache_misses);
  R.set t.g_cache_evictions (float_of_int cache_evictions)

(* ---------- renderings ---------- *)

let dist_json (s : Histo.snapshot) =
  let q p =
    match Histo.quantile s p with None -> Json.Null | Some v -> Json.Float v
  in
  Json.Obj
    [ ("count", Json.Int s.Histo.count);
      ( "mean_ms",
        match Histo.mean s with None -> Json.Null | Some v -> Json.Float v );
      ("p50_ms", q 0.5);
      ("p90_ms", q 0.9);
      ("p99_ms", q 0.99);
      ( "max_ms",
        if s.Histo.count = 0 then Json.Null else Json.Float s.Histo.vmax ) ]

let to_json ?store t ~queue_depth ~queue_cap ~workers ~cache =
  let endpoints =
    Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.endpoints []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.filter_map (fun (name, e) ->
           let s = R.histogram_snapshot e.e_hist in
           if s.Histo.count = 0 then None
           else
             let q p =
               match Histo.quantile s p with
               | None -> Json.Null
               | Some v -> Json.Float v
             in
             Some
               ( name,
                 Json.Obj
                   [ ("count", Json.Int s.Histo.count);
                     ( "avg_ms",
                       match Histo.mean s with
                       | None -> Json.Null
                       | Some v -> Json.Float v );
                     ("p50_ms", q 0.5);
                     ("p90_ms", q 0.9);
                     ("p99_ms", q 0.99) ] ))
  in
  Json.Obj
    [ ("uptime_s", Json.Float (uptime_s t));
      ( "queue",
        Json.Obj
          [ ("depth", Json.Int queue_depth); ("cap", Json.Int queue_cap) ] );
      ("workers", Json.Int workers);
      ( "outcomes",
        Json.Obj
          [ ("ok", Json.Int (R.counter_value t.ok));
            ("cached", Json.Int (R.counter_value t.cached));
            ("cancelled", Json.Int (R.counter_value t.cancelled));
            ("rejected", Json.Int (R.counter_value t.rejected));
            ("errors", Json.Int (R.counter_value t.errors)) ] );
      ("cache", cache);
      ("store", match store with None -> Json.Null | Some j -> j);
      ("endpoints", Json.Obj endpoints) ]

let metrics_json t =
  let rps w = Json.Float (Window.rate t.req_win ~window:w) in
  let gi g = Json.Int (int_of_float (R.gauge_value g)) in
  let request_dists =
    known_endpoints
    |> List.filter_map (fun name ->
           let s = snap_of t name in
           if s.Histo.count = 0 then None else Some (name, dist_json s))
  in
  Json.Obj
    [ ("uptime_s", Json.Float (uptime_s t));
      ( "windows",
        Json.Obj
          [ ("rps_1s", rps 1);
            ("rps_10s", rps 10);
            ("rps_60s", rps 60);
            ("requests_60s", Json.Int (Window.count t.req_win ~window:60));
            ( "cache_hit_rate_60s",
              match Window.mean_value t.probe_win ~window:60 with
              | None -> Json.Null
              | Some r -> Json.Float r ) ] );
      ( "queue",
        Json.Obj [ ("depth", gi t.g_queue_depth); ("cap", gi t.g_queue_cap) ]
      );
      ( "workers",
        Json.Obj
          [ ("total", gi t.g_workers); ("busy", gi t.g_workers_busy) ] );
      ( "outcomes",
        Json.Obj
          [ ("ok", Json.Int (R.counter_value t.ok));
            ("cached", Json.Int (R.counter_value t.cached));
            ("cancelled", Json.Int (R.counter_value t.cancelled));
            ("rejected", Json.Int (R.counter_value t.rejected));
            ("errors", Json.Int (R.counter_value t.errors)) ] );
      ( "cache",
        Json.Obj
          [ ("entries", gi t.g_cache_entries);
            ("hits", gi t.g_cache_hits);
            ("misses", gi t.g_cache_misses);
            ("evictions", gi t.g_cache_evictions) ] );
      ( "latency_ms",
        Json.Obj
          ([ ("solve", dist_json (R.histogram_snapshot t.solve_hist));
             ( "queue_wait",
               dist_json (R.histogram_snapshot t.queue_wait_hist) ) ]
          @ [ ("request", Json.Obj request_dists) ]) );
      ( "engine",
        Json.Obj
          [ ("layer", gi t.g_layer);
            ("layer_states", gi t.g_layer_states);
            ("states_pruned_total", Json.Int (R.counter_value t.c_pruned));
            ("spill_bytes_total", Json.Int (R.counter_value t.c_spill_bytes))
          ] );
      ( "gc",
        Json.Obj
          [ ("heap_words", gi t.g_gc_heap_words);
            ("major_collections", gi t.g_gc_major);
            ("resident_bytes", gi t.g_rss) ] ) ]

let prom t = Ovo_metrics.Prom.render t.reg

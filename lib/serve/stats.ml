module Json = Ovo_obs.Json

let sample_cap = 4096

type ring = {
  samples : float array;  (* ms; valid slots are [0 .. min count cap - 1] *)
  mutable count : int;  (* total recorded; ring index = count mod cap *)
  mutable sum : float;
}

type t = {
  m : Mutex.t;
  clock : unit -> float;
  started : float;
  endpoints : (string, ring) Hashtbl.t;
  mutable ok : int;
  mutable cached : int;
  mutable cancelled : int;
  mutable rejected : int;
  mutable errors : int;
}

let create ?(clock = Ovo_obs.Trace.monotonic) () =
  { m = Mutex.create (); clock; started = clock ();
    endpoints = Hashtbl.create 8; ok = 0; cached = 0; cancelled = 0;
    rejected = 0; errors = 0 }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let ring_of t endpoint =
  match Hashtbl.find_opt t.endpoints endpoint with
  | Some r -> r
  | None ->
      let r = { samples = Array.make sample_cap 0.; count = 0; sum = 0. } in
      Hashtbl.add t.endpoints endpoint r;
      r

let record t ~endpoint ~ms =
  with_lock t (fun () ->
      let r = ring_of t endpoint in
      let i = r.count mod sample_cap in
      if r.count >= sample_cap then r.sum <- r.sum -. r.samples.(i);
      r.samples.(i) <- ms;
      r.sum <- r.sum +. ms;
      r.count <- r.count + 1)

let record_outcome t outcome =
  with_lock t (fun () ->
      match outcome with
      | `Ok -> t.ok <- t.ok + 1
      | `Cached ->
          t.ok <- t.ok + 1;
          t.cached <- t.cached + 1
      | `Cancelled -> t.cancelled <- t.cancelled + 1
      | `Rejected -> t.rejected <- t.rejected + 1
      | `Error -> t.errors <- t.errors + 1)

let uptime_s t = t.clock () -. t.started

let live r = min r.count sample_cap

let avg_ms_opt t ~endpoint =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.endpoints endpoint with
      | None -> None
      | Some r ->
          let n = live r in
          if n = 0 then None else Some (r.sum /. float_of_int n))

let avg_ms t ~endpoint =
  Option.value (avg_ms_opt t ~endpoint) ~default:0.

let percentile_of_sorted sorted q =
  let n = Array.length sorted in
  (* nearest-rank: smallest sample with rank >= q*n *)
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let sorted_live r =
  let n = live r in
  let a = Array.sub r.samples 0 n in
  Array.sort Float.compare a;
  a

let percentile t ~endpoint q =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.endpoints endpoint with
      | None -> None
      | Some r ->
          if live r = 0 then None
          else Some (percentile_of_sorted (sorted_live r) q))

let to_json ?store t ~queue_depth ~queue_cap ~workers ~cache =
  with_lock t (fun () ->
      let endpoints =
        Hashtbl.fold (fun name r acc -> (name, r) :: acc) t.endpoints []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, r) ->
               let n = live r in
               let sorted = sorted_live r in
               let pct q =
                 if n = 0 then Json.Null
                 else Json.Float (percentile_of_sorted sorted q)
               in
               ( name,
                 Json.Obj
                   [ ("count", Json.Int r.count);
                     ( "avg_ms",
                       if n = 0 then Json.Null
                       else Json.Float (r.sum /. float_of_int n) );
                     ("p50_ms", pct 0.5);
                     ("p90_ms", pct 0.9);
                     ("p99_ms", pct 0.99) ] ))
      in
      Json.Obj
        [ ("uptime_s", Json.Float (t.clock () -. t.started));
          ( "queue",
            Json.Obj [ ("depth", Json.Int queue_depth); ("cap", Json.Int queue_cap) ] );
          ("workers", Json.Int workers);
          ( "outcomes",
            Json.Obj
              [ ("ok", Json.Int t.ok);
                ("cached", Json.Int t.cached);
                ("cancelled", Json.Int t.cancelled);
                ("rejected", Json.Int t.rejected);
                ("errors", Json.Int t.errors) ] );
          ("cache", cache);
          ( "store",
            match store with None -> Json.Null | Some j -> j );
          ("endpoints", Json.Obj endpoints) ])

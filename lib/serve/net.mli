(** Socket plumbing shared by every listener and dialer in the serving
    stack ({!Server}, {!Client}, {!Prom_export}, the router). *)

val sockaddr_of : Protocol.addr -> Unix.socket_domain * Unix.sockaddr
(** Resolve an {!Protocol.addr} (hostname lookup included) to what
    [Unix.connect] / [Unix.bind] want. *)

val bind_listen : Protocol.addr -> Unix.file_descr
(** Bind and listen (backlog 64).  A stale Unix-socket file from a
    previous unclean exit is removed first; TCP sockets get
    [SO_REUSEADDR].  Raises [Unix.Unix_error] if the address cannot be
    bound. *)

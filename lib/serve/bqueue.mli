(** A bounded, closeable, blocking job queue — the admission point of
    the ordering service.

    Producers never block: {!try_push} either enqueues or reports
    [`Full], which the server turns into a reject-with-retry-after
    response (backpressure instead of unbounded buffering).  Consumers
    ({!Server} worker threads) block in {!pop} until an element or
    closure arrives.  {!close} starts the graceful drain: pushes are
    refused from then on, but already-queued elements keep coming out of
    {!pop} until the queue is empty, after which every consumer gets
    [None] — so no accepted job is ever dropped by a shutdown. *)

type 'a t

exception Closed
(** Raised by {!try_push} after {!close}. *)

val create : cap:int -> 'a t
(** [cap] must be positive. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Current depth (racy by nature; exact under the caller's own
    serialisation). *)

val try_push : 'a t -> 'a -> [ `Pushed | `Full ]
(** Non-blocking; [`Full] when the queue holds [cap] elements.  Raises
    {!Closed} once the queue was closed. *)

val pop : 'a t -> 'a option
(** Block until an element is available ([Some x]) or the queue is both
    closed and drained ([None]). *)

val close : 'a t -> unit
(** Idempotent.  Wakes every blocked {!pop}. *)

val is_closed : 'a t -> bool

type 'a t = {
  m : Mutex.t;
  c : Condition.t;
  mutable v : 'a option;
}

let create () = { m = Mutex.create (); c = Condition.create (); v = None }

let fill t x =
  Mutex.lock t.m;
  (match t.v with
  | None ->
      t.v <- Some x;
      Condition.broadcast t.c
  | Some _ -> ());
  Mutex.unlock t.m

let read t =
  Mutex.lock t.m;
  let rec get () =
    match t.v with
    | Some x -> x
    | None ->
        Condition.wait t.c t.m;
        get ()
  in
  let x = get () in
  Mutex.unlock t.m;
  x

let peek t =
  Mutex.lock t.m;
  let v = t.v in
  Mutex.unlock t.m;
  v

module Json = Ovo_obs.Json
module Rlog = Ovo_store.Rlog

type entry = {
  at : float;
  req_id : int;
  endpoint : string;
  outcome : string;
  digest : string;
  cached : bool;
  queue_ms : float;
  solve_ms : float;
  lower : int;
  upper : int;
  detail : string;
  shard : string;  (* "" when not running as a fleet shard *)
}

let rtype_entry = 1

type t = Rlog.t

let entry_to_json e =
  Json.Obj
    ([ ("at", Json.Float e.at);
       ("req_id", Json.Int e.req_id);
       ("endpoint", Json.String e.endpoint);
       ("outcome", Json.String e.outcome);
       ("digest", Json.String e.digest);
       ("cached", Json.Bool e.cached);
       ("queue_ms", Json.Float e.queue_ms);
       ("solve_ms", Json.Float e.solve_ms);
       ("lower", Json.Int e.lower);
       ("upper", Json.Int e.upper);
       ("detail", Json.String e.detail) ]
    (* only shards emit the field, so logs written by a plain daemon stay
       byte-identical to the pre-fleet format *)
    @ (if e.shard = "" then [] else [ ("shard", Json.String e.shard) ]))

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Stdlib.Error (`Msg m)) fmt

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> err "access log entry: bad or missing field %S" name

let entry_of_json j =
  let* at = field "at" Json.to_float_opt j in
  let* req_id = field "req_id" Json.to_int_opt j in
  let* endpoint = field "endpoint" Json.to_string_opt j in
  let* outcome = field "outcome" Json.to_string_opt j in
  let* digest = field "digest" Json.to_string_opt j in
  let* cached = field "cached" Json.to_bool_opt j in
  let* queue_ms = field "queue_ms" Json.to_float_opt j in
  let* solve_ms = field "solve_ms" Json.to_float_opt j in
  let* lower = field "lower" Json.to_int_opt j in
  let* upper = field "upper" Json.to_int_opt j in
  let* detail = field "detail" Json.to_string_opt j in
  (* optional: entries written before the fleet era have no shard *)
  let shard =
    Option.value
      (Option.bind (Json.member "shard" j) Json.to_string_opt)
      ~default:""
  in
  Ok
    { at; req_id; endpoint; outcome; digest; cached; queue_ms; solve_ms;
      lower; upper; detail; shard }

let decode_record (r : Rlog.record) =
  if r.Rlog.rtype <> rtype_entry then None
  else
    match Json.parse r.Rlog.payload with
    | Stdlib.Error _ -> None
    | Ok j -> ( match entry_of_json j with Ok e -> Some e | Stdlib.Error _ -> None)

let open_append ?fsync path =
  let t, records, _recovery = Rlog.open_append ?fsync path in
  (t, List.length (List.filter_map decode_record records))

let append t e =
  Rlog.append t ~rtype:rtype_entry (Json.to_string (entry_to_json e))

let close t =
  Rlog.sync t;
  Rlog.close t

let read path =
  match Rlog.read path with
  | Stdlib.Error _ as e -> e
  | Ok (records, recovery) ->
      Ok (List.filter_map decode_record records, recovery)

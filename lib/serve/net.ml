module P = Protocol

let sockaddr_of = function
  | P.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | P.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port))

let bind_listen addr =
  (match addr with
  | P.Unix_sock path ->
      (* a previous unclean exit leaves the socket file around; a live
         daemon on the same path will still fail the bind below *)
      (try Unix.unlink path with Unix.Unix_error _ -> ())
  | P.Tcp _ -> ());
  let domain, sockaddr = sockaddr_of addr in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | P.Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true
  | P.Unix_sock _ -> ());
  Unix.bind sock sockaddr;
  Unix.listen sock 64;
  sock

(** Structured per-request access log for the serving daemon.

    One {!entry} per completed solve request — digest, outcome, queue
    wait, solve duration, cache hit, final bound window — appended as a
    JSON payload inside an {!Ovo_store.Rlog} frame, so the log shares
    the store's crash-discipline: CRC-framed records, torn tails
    truncated on reopen, nothing before a torn tail ever lost.  A
    process killed mid-append costs exactly that entry
    ([test/metrics.t] kills the daemon with SIGKILL and reopens).

    Entries use record type {!rtype_entry}; unknown record types are
    skipped on read, so the format can grow. *)

type entry = {
  at : float;  (** Unix time the request completed *)
  req_id : int;  (** server-assigned request sequence number *)
  endpoint : string;  (** ["solve"] today; the field exists to grow *)
  outcome : string;  (** ["ok"], ["cached"], ["cancelled"], ["error"] *)
  digest : string;  (** canonical table digest; [""] when unknown *)
  cached : bool;
  queue_ms : float;
  solve_ms : float;
  lower : int;  (** best lower bound at completion; [-1] = unknown *)
  upper : int;  (** best upper bound at completion; [-1] = unknown *)
  detail : string;  (** error/cancel message; [""] otherwise *)
  shard : string;
      (** shard identity ([ovo serve --shard-id]) when the daemon runs
          as a fleet member behind the router; [""] otherwise.  The
          field is omitted from the wire encoding when empty, so logs
          written before the fleet era — and by plain daemons — decode
          unchanged. *)
}

val rtype_entry : int

type t

val open_append : ?fsync:Ovo_store.Rlog.fsync -> string -> t * int
(** Open (creating or recovering as {!Ovo_store.Rlog.open_append}
    does) and return the number of valid entries already present. *)

val append : t -> entry -> unit
val close : t -> unit
(** Flushes (fsync) before closing so a graceful shutdown never leaves
    an un-synced tail. *)

val entry_to_json : entry -> Ovo_obs.Json.t
val entry_of_json : Ovo_obs.Json.t -> (entry, [ `Msg of string ]) result

val read : string -> (entry list * Ovo_store.Rlog.recovery, string) result
(** All valid entries in the file; undecodable or foreign-typed records
    are skipped (counted neither valid nor discarded). *)

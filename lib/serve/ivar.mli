(** A write-once synchronisation cell: the hand-off between a
    connection thread (which waits for its request's outcome) and the
    worker that computes it. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Wakes every {!read}er.  A second fill is ignored (first writer
    wins), so racing a worker result against a shutdown notice is
    safe. *)

val read : 'a t -> 'a
(** Block until filled. *)

val peek : 'a t -> 'a option

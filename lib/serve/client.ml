module P = Protocol

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect addr =
  let domain, sockaddr =
    match addr with
    | P.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | P.Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
        in
        (Unix.PF_INET, Unix.ADDR_INET (ip, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let roundtrip t req =
  match
    output_string t.oc (P.request_to_line req);
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception End_of_file -> Error (`Msg "connection closed by server")
  | exception Sys_error m -> Error (`Msg m)
  | line -> P.reply_of_line line

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_conn addr f =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

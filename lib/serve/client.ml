module P = Protocol

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* A connect with a deadline: non-blocking connect, wait for
   writability, then read SO_ERROR — the portable way to bound the
   three-way handshake (a blocking connect can hang for minutes on a
   dead TCP host). *)
let connect_deadline fd sockaddr timeout =
  Unix.set_nonblock fd;
  (try Unix.connect fd sockaddr with
  | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
    -> (
      match Unix.select [] [ fd ] [] timeout with
      | _, [], _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
      | _, _ :: _, _ -> (
          match Unix.getsockopt_error fd with
          | None -> ()
          | Some e -> raise (Unix.Unix_error (e, "connect", "")))));
  Unix.clear_nonblock fd

let connect ?timeout addr =
  let domain, sockaddr = Net.sockaddr_of addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     match timeout with
     | None -> Unix.connect fd sockaddr
     | Some limit -> connect_deadline fd sockaddr limit
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(* Transient connect failures: the peer is restarting (refused / socket
   file not there yet), or unreachable right now.  Anything else — e.g.
   EACCES — is permanent and retrying would only hide it. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.ETIMEDOUT
  | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.EAGAIN ->
      true
  | _ -> false

let default_backoff_ms = 50.
let max_backoff_ms = 2000.

let connect_retry ?timeout ?(retries = 0) ?(backoff_ms = default_backoff_ms)
    addr =
  let rec go attempt =
    match connect ?timeout addr with
    | t -> t
    | exception Unix.Unix_error (e, _, _) when transient e && attempt < retries
      ->
        let delay =
          Float.min max_backoff_ms (backoff_ms *. (2. ** float_of_int attempt))
        in
        Thread.delay (delay /. 1000.);
        go (attempt + 1)
  in
  go 0

let send t req =
  output_string t.oc (P.request_to_line req);
  output_char t.oc '\n';
  flush t.oc

let recv t =
  match input_line t.ic with
  | exception End_of_file -> Error (`Msg "connection closed by server")
  | exception Sys_error m -> Error (`Msg m)
  | line -> P.reply_of_line line

let roundtrip t req =
  match send t req with
  | exception Sys_error m -> Error (`Msg m)
  | () -> recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_conn ?timeout ?retries ?backoff_ms addr f =
  let t = connect_retry ?timeout ?retries ?backoff_ms addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

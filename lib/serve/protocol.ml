module Json = Ovo_obs.Json
module Compact = Ovo_core.Compact
module Engine = Ovo_core.Engine

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  let tcp spec =
    match String.rindex_opt spec ':' with
    | Some i when i > 0 && i < String.length spec - 1 ->
        let host = String.sub spec 0 i in
        let port = String.sub spec (i + 1) (String.length spec - i - 1) in
        (match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
        | _ -> Error (`Msg (Printf.sprintf "invalid port in %S" spec)))
    | _ -> Error (`Msg (Printf.sprintf "expected host:port, got %S" spec))
  in
  match String.index_opt s ':' with
  | Some 4 when String.sub s 0 4 = "unix" ->
      Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  | Some 3 when String.sub s 0 3 = "tcp" ->
      tcp (String.sub s 4 (String.length s - 4))
  | _ ->
      if String.contains s '/' || not (String.contains s ':') then
        Ok (Unix_sock s)
      else tcp s

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

type solve_params = {
  table : string;
  kind : Compact.kind;
  engine : Engine.t;
  deadline_ms : float option;
}

type metrics_format = Mjson | Mprom

type op =
  | Solve of solve_params
  | Solve_many of solve_params list
  | Stats
  | Metrics of metrics_format
  | Ping
  | Shutdown
type request = { id : int; op : op }

type solve_reply = {
  digest : string;
  mincost : int;
  size : int;
  order : int array;
  widths : int array;
  cached : bool;
  queue_ms : float;
  solve_ms : float;
}

type error_code =
  | Bad_request
  | Queue_full
  | Too_large
  | Shutting_down
  | Shard_down
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Queue_full -> "queue_full"
  | Too_large -> "too_large"
  | Shutting_down -> "shutting_down"
  | Shard_down -> "shard_down"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "queue_full" -> Some Queue_full
  | "too_large" -> Some Too_large
  | "shutting_down" -> Some Shutting_down
  | "shard_down" -> Some Shard_down
  | "internal" -> Some Internal
  | _ -> None

type response =
  | Ok_solve of solve_reply
  | Ok_stats of Json.t
  | Ok_metrics of Json.t
  | Ok_prom of string
  | Pong
  | Bye
  | Cancelled of string
  | Error of {
      code : error_code;
      message : string;
      retry_after_ms : float option;
    }

type reply = { r_id : int; item : int option; body : response }

let reply ?item r_id body = { r_id; item; body }

(* ---------- encoding ---------- *)

let kind_to_string = function Compact.Bdd -> "bdd" | Compact.Zdd -> "zdd"

let kind_of_string = function
  | "bdd" -> Some Compact.Bdd
  | "zdd" -> Some Compact.Zdd
  | _ -> None

let int_array_json a = Json.List (Array.to_list a |> List.map (fun i -> Json.Int i))

let solve_fields (p : solve_params) =
  [ ("table", Json.String p.table);
    ("kind", Json.String (kind_to_string p.kind));
    ("engine", Json.String (Engine.to_string p.engine)) ]
  @ (match p.deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", Json.Float ms) ])

let request_to_line { id; op } =
  let fields =
    match op with
    | Solve p ->
        [ ("id", Json.Int id); ("op", Json.String "solve") ] @ solve_fields p
    | Solve_many items ->
        [ ("id", Json.Int id); ("op", Json.String "solve_many");
          ( "items",
            Json.List
              (List.map (fun p -> Json.Obj (solve_fields p)) items) ) ]
    | Stats -> [ ("id", Json.Int id); ("op", Json.String "stats") ]
    | Metrics fmt ->
        [ ("id", Json.Int id); ("op", Json.String "metrics");
          ( "format",
            Json.String
              (match fmt with Mjson -> "json" | Mprom -> "prometheus") ) ]
    | Ping -> [ ("id", Json.Int id); ("op", Json.String "ping") ]
    | Shutdown -> [ ("id", Json.Int id); ("op", Json.String "shutdown") ]
  in
  Json.to_string (Json.Obj fields)

let reply_to_line { r_id; item; body } =
  let item_field =
    match item with None -> [] | Some k -> [ ("item", Json.Int k) ]
  in
  let fields =
    match body with
    | Ok_solve r ->
        [ ("id", Json.Int r_id); ("status", Json.String "ok");
          ("digest", Json.String r.digest);
          ("mincost", Json.Int r.mincost);
          ("size", Json.Int r.size);
          ("order", int_array_json r.order);
          ("widths", int_array_json r.widths);
          ("cached", Json.Bool r.cached);
          ("queue_ms", Json.Float r.queue_ms);
          ("solve_ms", Json.Float r.solve_ms) ]
    | Ok_stats s ->
        [ ("id", Json.Int r_id); ("status", Json.String "ok"); ("stats", s) ]
    | Ok_metrics m ->
        [ ("id", Json.Int r_id); ("status", Json.String "ok"); ("metrics", m) ]
    | Ok_prom text ->
        [ ("id", Json.Int r_id); ("status", Json.String "ok");
          ("prom", Json.String text) ]
    | Pong -> [ ("id", Json.Int r_id); ("status", Json.String "pong") ]
    | Bye -> [ ("id", Json.Int r_id); ("status", Json.String "bye") ]
    | Cancelled msg ->
        [ ("id", Json.Int r_id); ("status", Json.String "cancelled");
          ("message", Json.String msg) ]
    | Error e ->
        [ ("id", Json.Int r_id); ("status", Json.String "error");
          ("code", Json.String (error_code_to_string e.code));
          ("message", Json.String e.message) ]
        @ (match e.retry_after_ms with
          | None -> []
          | Some ms -> [ ("retry_after_ms", Json.Float ms) ])
  in
  Json.to_string (Json.Obj (fields @ item_field))

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Stdlib.Error (`Msg m)) fmt

let strip_line s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

let parse_obj line =
  match Json.parse (strip_line line) with
  | Stdlib.Error m -> err "invalid JSON: %s" m
  | Ok (Json.Obj _ as j) -> Ok j
  | Ok _ -> err "expected a JSON object"

let req_field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> err "missing field %S" name

let int_field name j =
  let* v = req_field name j in
  match Json.to_int_opt v with
  | Some i -> Ok i
  | None -> err "field %S: expected an integer" name

let string_field name j =
  let* v = req_field name j in
  match Json.to_string_opt v with
  | Some s -> Ok s
  | None -> err "field %S: expected a string" name

let opt_float_field name j =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
      match Json.to_float_opt v with
      | Some f -> Ok (Some f)
      | None -> err "field %S: expected a number" name)

let int_array_field name j =
  let* v = req_field name j in
  match Json.to_list_opt v with
  | None -> err "field %S: expected a list" name
  | Some l ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | x :: tl -> (
            match Json.to_int_opt x with
            | Some i -> go (i :: acc) tl
            | None -> err "field %S: expected a list of integers" name)
      in
      go [] l

let solve_params_of_json j =
  let* table = string_field "table" j in
  let* kind =
    match Json.member "kind" j with
    | None -> Ok Compact.Bdd
    | Some v -> (
        match Option.bind (Json.to_string_opt v) kind_of_string with
        | Some k -> Ok k
        | None -> err "field \"kind\": expected \"bdd\" or \"zdd\"")
  in
  let* engine =
    match Json.member "engine" j with
    | None -> Ok Engine.Seq
    | Some v -> (
        match Json.to_string_opt v with
        | None -> err "field \"engine\": expected a string"
        | Some s -> (
            match Engine.of_string s with
            | Ok e -> Ok e
            | Stdlib.Error (`Msg m) -> err "field \"engine\": %s" m))
  in
  let* deadline_ms = opt_float_field "deadline_ms" j in
  Ok { table; kind; engine; deadline_ms }

let request_of_line line =
  let* j = parse_obj line in
  let* id = int_field "id" j in
  let* op = string_field "op" j in
  match op with
  | "ping" -> Ok { id; op = Ping }
  | "stats" -> Ok { id; op = Stats }
  | "shutdown" -> Ok { id; op = Shutdown }
  | "metrics" -> (
      match Json.member "format" j with
      | None -> Ok { id; op = Metrics Mjson }
      | Some v -> (
          match Json.to_string_opt v with
          | Some "json" -> Ok { id; op = Metrics Mjson }
          | Some "prometheus" -> Ok { id; op = Metrics Mprom }
          | _ ->
              err "field \"format\": expected \"json\" or \"prometheus\""))
  | "solve" ->
      let* p = solve_params_of_json j in
      Ok { id; op = Solve p }
  | "solve_many" -> (
      let* v = req_field "items" j in
      match Json.to_list_opt v with
      | None -> err "field \"items\": expected a list"
      | Some l ->
          let rec go k acc = function
            | [] -> Ok { id; op = Solve_many (List.rev acc) }
            | (Json.Obj _ as item) :: tl -> (
                match solve_params_of_json item with
                | Ok p -> go (k + 1) (p :: acc) tl
                | Stdlib.Error (`Msg m) -> err "item %d: %s" k m)
            | _ -> err "item %d: expected an object" k
          in
          go 0 [] l)
  | other -> err "unknown op %S" other

let reply_of_line line =
  let* j = parse_obj line in
  let* r_id = int_field "id" j in
  let* item =
    match Json.member "item" j with
    | None -> Ok None
    | Some v -> (
        match Json.to_int_opt v with
        | Some k -> Ok (Some k)
        | None -> err "field \"item\": expected an integer")
  in
  let* status = string_field "status" j in
  match status with
  | "pong" -> Ok { r_id; item; body = Pong }
  | "bye" -> Ok { r_id; item; body = Bye }
  | "cancelled" ->
      let* message = string_field "message" j in
      Ok { r_id; item; body = Cancelled message }
  | "error" ->
      let* code_s = string_field "code" j in
      let* message = string_field "message" j in
      let* retry_after_ms = opt_float_field "retry_after_ms" j in
      let code =
        Option.value (error_code_of_string code_s) ~default:Internal
      in
      Ok { r_id; item; body = Error { code; message; retry_after_ms } }
  | "ok" -> (
      match
        (Json.member "stats" j, Json.member "metrics" j, Json.member "prom" j)
      with
      | Some s, _, _ -> Ok { r_id; item; body = Ok_stats s }
      | None, Some m, _ -> Ok { r_id; item; body = Ok_metrics m }
      | None, None, Some p -> (
          match Json.to_string_opt p with
          | Some text -> Ok { r_id; item; body = Ok_prom text }
          | None -> err "field \"prom\": expected a string")
      | None, None, None ->
          let* digest = string_field "digest" j in
          let* mincost = int_field "mincost" j in
          let* size = int_field "size" j in
          let* order = int_array_field "order" j in
          let* widths = int_array_field "widths" j in
          let* cached =
            let* v = req_field "cached" j in
            match Json.to_bool_opt v with
            | Some b -> Ok b
            | None -> err "field \"cached\": expected a boolean"
          in
          let* queue_ms =
            let* v = opt_float_field "queue_ms" j in
            Ok (Option.value v ~default:0.)
          in
          let* solve_ms =
            let* v = opt_float_field "solve_ms" j in
            Ok (Option.value v ~default:0.)
          in
          Ok
            { r_id; item;
              body =
                Ok_solve
                  { digest; mincost; size; order; widths; cached; queue_ms;
                    solve_ms } })
  | other -> err "unknown status %S" other

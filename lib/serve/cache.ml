module Truthtable = Ovo_boolfun.Truthtable
module Compact = Ovo_core.Compact
module Json = Ovo_obs.Json
module Trace = Ovo_obs.Trace

type entry = {
  canon : Truthtable.t;
  mincost : int;
  size : int;
  canon_order : int array;
  widths : int array;
}

(* The key pairs the digest with the diagram kind: the same function has
   different optimal orderings as a BDD and as a ZDD. *)
type key = string * Compact.kind

type t = {
  m : Mutex.t;
  lru : (key, entry) Lru.t;
  trace : Trace.t;
  persist : (digest:string -> kind:Compact.kind -> entry -> unit) option;
  mutable hits : int;
  mutable misses : int;
  mutable collisions : int;
}

let create ?(trace = Trace.null) ?persist ~cap () =
  { m = Mutex.create (); lru = Lru.create ~cap; trace; persist; hits = 0;
    misses = 0; collisions = 0 }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find t ~digest ~kind ~canon =
  with_lock t (fun () ->
      match Lru.find t.lru (digest, kind) with
      | Some e when Truthtable.equal e.canon canon ->
          t.hits <- t.hits + 1;
          Some e
      | Some _ ->
          (* same digest, different table: a hash collision (or a
             corrupt warm-loaded record).  Count it — and degrade to a
             miss, never a wrong answer. *)
          t.collisions <- t.collisions + 1;
          t.misses <- t.misses + 1;
          Trace.counter t.trace "cache.collision"
            (float_of_int t.collisions);
          None
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t ~digest ~kind entry =
  with_lock t (fun () -> Lru.add t.lru (digest, kind) entry);
  (* outside the lock: the persist hook does file I/O *)
  match t.persist with
  | None -> ()
  | Some persist -> persist ~digest ~kind entry

let warm t ~digest ~kind entry =
  with_lock t (fun () -> Lru.add t.lru (digest, kind) entry)

let capacity t = Lru.capacity t.lru
let length t = with_lock t (fun () -> Lru.length t.lru)
let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let collisions t = with_lock t (fun () -> t.collisions)
let evictions t = with_lock t (fun () -> Lru.evictions t.lru)

let hit_rate t =
  with_lock t (fun () ->
      let total = t.hits + t.misses in
      if total = 0 then 0. else float_of_int t.hits /. float_of_int total)

let to_json t =
  with_lock t (fun () ->
      let total = t.hits + t.misses in
      let rate =
        if total = 0 then 0. else float_of_int t.hits /. float_of_int total
      in
      Json.Obj
        [ ("capacity", Json.Int (Lru.capacity t.lru));
          ("length", Json.Int (Lru.length t.lru));
          ("hits", Json.Int t.hits);
          ("misses", Json.Int t.misses);
          ("collisions", Json.Int t.collisions);
          ("evictions", Json.Int (Lru.evictions t.lru));
          ("hit_rate", Json.Float rate) ])

module Truthtable = Ovo_boolfun.Truthtable
module Cancel = Ovo_core.Cancel
module Fs = Ovo_core.Fs
module Trace = Ovo_obs.Trace
module Json = Ovo_obs.Json

type solved = {
  digest : string;
  mincost : int;
  size : int;
  order : int array;
  widths : int array;
  cached : bool;
}

let is_pow2 k = k > 0 && k land (k - 1) = 0

let parse_table ~max_arity s =
  let len = String.length s in
  if not (is_pow2 len) then
    Error (`Bad (Printf.sprintf "table length %d is not a power of two" len))
  else if String.exists (fun c -> c <> '0' && c <> '1') s then
    Error (`Bad "table must contain only '0' and '1'")
  else
    let n = ref 0 in
    while 1 lsl !n < len do incr n done;
    if !n > max_arity then
      Error
        (`Too_large
           (Printf.sprintf "arity %d exceeds the server limit of %d" !n
              max_arity))
    else Ok (Truthtable.of_string s)

(* Fs results are read-last-first ([order.(0)] at the bottom); the wire
   carries root-first.  [perm] maps canonical variables back to the
   request's: canon variable [j] is request variable [perm.(j)]. *)
let reply_of_entry ~digest ~perm ~cached (e : Cache.entry) =
  let m = Array.length e.canon_order in
  let order = Array.make m 0 and widths = Array.make m 0 in
  for j = 0 to m - 1 do
    order.(j) <- perm.(e.canon_order.(m - 1 - j));
    widths.(j) <- e.widths.(m - 1 - j)
  done;
  { digest; mincost = e.mincost; size = e.size; order; widths; cached }

(* Out-of-core solves spill into a fresh per-job scratch directory —
   two workers may race on the same canonical table, so directories must
   never be shared. *)
let spill_seq = Atomic.make 0

let fresh_spill_dir () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ovo-serve-spill-%d-%d" (Unix.getpid ())
       (Atomic.fetch_and_add spill_seq 1))

let solve ?(trace = Trace.null) ?mem_budget ?(prune = false)
    ?(orderer = `Exact) ?stats ~cache ~cancel ~engine ~kind tt =
  (* the pruning context outlives [Cancel.protect]: a deadline-expired
     pruned solve still reports its best (lower, incumbent) pair — the
     any-time payoff of seeding before the sweep *)
  let bound_ref = ref None in
  let note_pruned () =
    match (stats, !bound_ref) with
    | Some st, Some b -> Stats.add_pruned st (Ovo_core.Bound.states_pruned b)
    | _ -> ()
  in
  let on_layer =
    Option.map
      (fun st (p : Ovo_core.Subset_dp.progress) ->
        Stats.note_layer st ~layer:p.Ovo_core.Subset_dp.p_layer
          ~states:(Array.length p.Ovo_core.Subset_dp.p_entries))
      stats
  in
  match
    Cancel.protect cancel (fun () ->
        Cancel.check cancel;
        let canon, perm =
          Trace.with_span trace ~cat:"serve" "serve.canon" (fun () ->
              Truthtable.canonicalize tt)
        in
        let digest = Truthtable.digest_of_canonical canon in
        let probe =
          Trace.with_span trace ~cat:"serve"
            ~args:(fun () -> [ ("digest", Json.String digest) ])
            "serve.cache_probe"
            (fun () -> Cache.find cache ~digest ~kind ~canon)
        in
        Option.iter
          (fun st -> Stats.note_probe st ~hit:(probe <> None))
          stats;
        match probe with
        | Some entry -> reply_of_entry ~digest ~perm ~cached:true entry
        | None when orderer = `Scored ->
            (* deadline-tight fast path: answer with the scored static
               ordering — a valid ordering and an achievable cost, not a
               proven optimum, so it must never enter the exact cache *)
            Cancel.check cancel;
            let entry =
              Trace.with_span trace ~cat:"serve" "serve.scored" (fun () ->
                  let order = Ovo_learn.Scorer.order canon in
                  { Cache.canon;
                    mincost = Ovo_core.Eval_order.mincost ~kind canon order;
                    size = Ovo_core.Eval_order.size ~kind canon order;
                    canon_order = order;
                    widths = Ovo_core.Eval_order.widths ~kind canon order })
            in
            reply_of_entry ~digest ~perm ~cached:false entry
        | None ->
            Cancel.check cancel;
            let pr =
              if not prune then None
              else begin
                (* scored incumbent first (free), sifting refines it *)
                let b =
                  Trace.with_span trace ~cat:"serve" "serve.seed" (fun () ->
                      Ovo_learn.Scorer.seeded_bound ~trace ~kind canon)
                in
                bound_ref := Some b;
                Some b
              end
            in
            let r =
              Trace.with_span trace ~cat:"serve" "serve.solve" (fun () ->
                  match mem_budget with
                  | None ->
                      Fs.run ~trace ~kind ~engine ~cancel ?prune:pr ?on_layer
                        canon
                  | Some budget_bytes ->
                      let sp = Ovo_store.Spill.create (fresh_spill_dir ()) in
                      Fun.protect
                        ~finally:(fun () -> Ovo_store.Spill.remove sp)
                        (fun () ->
                          let membudget =
                            Ovo_core.Membudget.create ~budget_bytes
                              ~sink:(Ovo_store.Spill.sink sp) ()
                          in
                          Fun.protect
                            ~finally:(fun () ->
                              Option.iter
                                (fun st ->
                                  Stats.add_spill_bytes st
                                    (Ovo_core.Membudget.bytes_spilled
                                       membudget))
                                stats)
                            (fun () ->
                              Fs.run ~trace ~kind ~engine ~cancel ~membudget
                                ?prune:pr ?on_layer canon)))
            in
            note_pruned ();
            let entry =
              { Cache.canon; mincost = r.mincost; size = r.size;
                canon_order = r.order; widths = r.widths }
            in
            Cache.add cache ~digest ~kind entry;
            reply_of_entry ~digest ~perm ~cached:false entry)
  with
  | Ok s -> Ok s
  | Error `Cancelled ->
      note_pruned ();
      Error (`Cancelled (Option.map Ovo_core.Bound.anytime !bound_ref))

(** The canonical result cache.

    Solve results are stored under [(Truthtable.digest, kind)] — the
    digest of the {e canonical} form of the input function — so a repeat
    of the same request {e and} any permutation-relabeled variant of it
    hit the same entry.  Because the server always solves the canonical
    table and maps the ordering back through the canonicalizing
    permutation, a cache hit returns byte-identical results to a fresh
    solve.

    Digests are paired with an equality check on the stored canonical
    table ({!find} takes the probe's canonical table), so a hash
    collision degrades to a miss, never to a wrong answer.

    All operations are serialised by an internal mutex; hit/miss/
    eviction counters are maintained for the [stats] endpoint. *)

type entry = {
  canon : Ovo_boolfun.Truthtable.t;  (** canonical table that was solved *)
  mincost : int;
  size : int;
  canon_order : int array;
      (** optimal ordering of the {e canonical} table, read-last-first
          (the {!Ovo_core.Fs.result} convention); callers map it back to
          the request's variables through their own permutation *)
  widths : int array;
}

type t

val create :
  ?trace:Ovo_obs.Trace.t ->
  ?persist:
    (digest:string -> kind:Ovo_core.Compact.kind -> entry -> unit) ->
  cap:int ->
  unit ->
  t
(** LRU capacity in entries; [cap] must be positive.  A recording
    [trace] (default {!Ovo_obs.Trace.null}) receives a
    [cache.collision] counter each time equality verification rejects a
    digest match.  [persist] is called — outside the cache lock — after
    every {!add}; the server points it at
    {!Ovo_store.Result_store.append} when a [--store] is configured. *)

val find :
  t ->
  digest:string ->
  kind:Ovo_core.Compact.kind ->
  canon:Ovo_boolfun.Truthtable.t ->
  entry option
(** Probe (and touch) the cache.  Returns the entry only when the stored
    canonical table equals [canon]; a digest collision counts as a
    miss (and a collision). *)

val add :
  t -> digest:string -> kind:Ovo_core.Compact.kind -> entry -> unit
(** Insert and, when configured, persist. *)

val warm :
  t -> digest:string -> kind:Ovo_core.Compact.kind -> entry -> unit
(** Insert {e without} persisting — for warm-loading entries that came
    from the store in the first place. *)

val capacity : t -> int
val length : t -> int
val hits : t -> int
val misses : t -> int

val collisions : t -> int
(** Digest matches rejected by the equality check. *)

val evictions : t -> int

val hit_rate : t -> float
(** [hits / (hits + misses)]; [0.] before any probe. *)

val to_json : t -> Ovo_obs.Json.t
(** Deterministic field order: capacity, length, hits, misses,
    collisions, evictions, hit_rate. *)

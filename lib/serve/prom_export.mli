(** Prometheus exposition exporter shared by the daemon and the router.

    One {!t} owns every exporter thread for a process: the 1 s ticker
    that keeps gauges fresh (and atomically rewrites a file sink via
    tmp + rename), and the one-shot HTTP scrape responder for an
    address sink.  Extracted from {!Server} so both it and the router
    get identical — and identically shutdown-safe — export behaviour.

    The shutdown contract is the point: {!stop_and_flush} {e joins} the
    ticker and scrape threads {e before} writing the final snapshot, so
    after it returns the file is final and no thread of this exporter
    is left running.  (The pre-extraction server had to re-state that
    join-before-write ordering inline in [wait]; now it is structural
    and regression-tested.) *)

type sink =
  | Prom_file of string
      (** rewrite the exposition to this path (tmp + rename, so readers
          never see a torn file) every period and once at shutdown *)
  | Prom_addr of Protocol.addr
      (** serve the exposition over one-shot HTTP responses on this
          address — enough for a Prometheus scrape loop or [curl] *)

val sink_of_string : string -> (sink, [ `Msg of string ]) result
(** A spec containing ['/'] is a file path; a parseable [host:port] is
    a scrape address; a bare word is a file in the current directory. *)

val sink_to_string : sink -> string

type t

val start :
  ?period:float ->
  sink:sink option ->
  render:(unit -> string) ->
  refresh:(unit -> unit) ->
  unit ->
  t
(** Spawn the ticker (default [period] 1 s) and, for an address sink,
    bind and spawn the scrape responder.  [render] must refresh live
    gauges and return the full exposition; [refresh] is the cheap
    gauge-only refresh the ticker uses when there is no file to write.
    With [sink = None] the ticker still runs [refresh] so in-band
    [metrics] replies never read stale gauges. *)

val stop_and_flush : t -> unit
(** Stop and join every exporter thread, close the scrape listener,
    then write the final file snapshot.  Blocking, idempotent in
    effect; after return the sink is quiescent. *)

(** Server-side telemetry: the typed {!Ovo_metrics.Registry} behind the
    [stats] and [metrics] endpoints, the Prometheus exposition and the
    final report printed at shutdown.

    Everything lifetime lives in the registry — per-endpoint request
    counters and log-bucketed latency histograms, outcome tallies,
    solve-duration and queue-wait histograms, engine gauges (DP layer
    progress, states pruned, bytes spilled), GC/process gauges.  On top
    sit rolling {!Ovo_metrics.Window}s for the "right now" numbers:
    request rates over the last 1/10/60 s and the cache hit-rate over
    the last minute.

    This replaces the earlier per-endpoint sample rings, which sorted
    under the server mutex on every stats call and whose
    subtract-on-evict running sum drifted over long uptimes: histogram
    recording is constant-time and lock-free, quantiles are O(buckets)
    estimates (within {!Ovo_metrics.Histo.max_rel_error} of exact
    nearest-rank), and sums are add-only, so the mean is exact up to
    float rounding no matter the uptime ([test/test_metrics.ml] pins
    the regression). *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to {!Ovo_obs.Trace.monotonic}; inject a fake clock
    in tests.  The five protocol endpoints (ping, solve, stats, metrics,
    shutdown) are pre-registered so the exposition's order does not
    depend on traffic. *)

val registry : t -> Ovo_metrics.Registry.t

val record : t -> endpoint:string -> ms:float -> unit
(** One completed request on [endpoint] with end-to-end handling
    latency [ms]; also feeds the request-rate windows. *)

val record_outcome :
  t -> [ `Ok | `Cached | `Cancelled | `Rejected | `Error ] -> unit
(** Outcome tally for solve requests.  [`Cached] implies [`Ok] —
    record exactly one outcome per request. *)

val uptime_s : t -> float

val avg_ms : t -> endpoint:string -> float
(** Lifetime mean latency; [0.] with no samples.  Exact (add-only sum),
    unlike the old ring's drifting running sum. *)

val avg_ms_opt : t -> endpoint:string -> float option
(** As {!avg_ms} but [None] with no samples — so a caller can tell "no
    data yet" from "instantaneous". *)

val percentile : t -> endpoint:string -> float -> float option
(** Histogram quantile estimate; [None] with no samples. *)

(** {2 Solve-path instruments} *)

val record_solve_ms : t -> float -> unit
(** Duration of one completed (non-cached) or cached solve, measured in
    the worker — the distribution [retry_after_ms] is estimated from. *)

val solve_ms_p50 : t -> float option
(** Median observed solve duration; [None] before the first solve —
    the server's backpressure hint falls back to a flagged fixed
    default only in that truly-cold case. *)

val record_queue_wait_ms : t -> float -> unit

val note_probe : t -> hit:bool -> unit
(** One cache probe, feeding the 60 s hit-rate window. *)

val note_layer : t -> layer:int -> states:int -> unit
(** Engine progress gauges: the DP cardinality layer that just
    completed and its surviving state count (last solve wins — a fleet
    dashboard reads these as "what is the engine chewing on"). *)

val add_pruned : t -> int -> unit
val add_spill_bytes : t -> int -> unit

val worker_busy : t -> unit
val worker_idle : t -> unit
val workers_busy : t -> int

val sample_gc : t -> unit
(** Sample [Gc.quick_stat] (heap words, major collections) and, on
    Linux, the process resident set from [/proc/self/statm] into
    gauges.  Called by the server's 1 s ticker and before every
    exposition. *)

val set_live :
  t ->
  queue_depth:int ->
  queue_cap:int ->
  workers:int ->
  cache_entries:int ->
  cache_hits:int ->
  cache_misses:int ->
  cache_evictions:int ->
  unit
(** Refresh the point-in-time gauges (queue, workers, cache mirror,
    uptime) the exposition renders — called right before
    {!metrics_json} or {!prom}. *)

(** {2 Renderings} *)

val to_json :
  ?store:Ovo_obs.Json.t ->
  t ->
  queue_depth:int ->
  queue_cap:int ->
  workers:int ->
  cache:Ovo_obs.Json.t ->
  Ovo_obs.Json.t
(** The [stats] reply body — same shape as always: uptime_s, queue
    {depth, cap}, workers, outcomes {ok, cached, cancelled, rejected,
    errors}, cache (as given), store ([null] without persistence),
    endpoints (sorted by name, each with count, avg_ms, p50_ms, p90_ms,
    p99_ms; only endpoints with traffic appear). *)

val metrics_json : t -> Ovo_obs.Json.t
(** The [metrics] reply body (schema in doc/service.md): uptime_s,
    windows (rps over 1/10/60 s, 60 s cache hit rate), queue, workers,
    outcomes, latency_ms (solve, queue_wait and per-endpoint request
    distributions), engine, gc.  Reads the gauges {!set_live} filled. *)

val prom : t -> string
(** Prometheus text-format 0.0.4 exposition of the whole registry. *)

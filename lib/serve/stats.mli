(** Server-side request accounting: per-endpoint counters and latency
    percentiles, uptime, and outcome tallies — everything behind the
    [stats] endpoint and the final report printed at shutdown.

    Latencies are kept in a bounded ring per endpoint (the most recent
    {!val:sample_cap} observations), from which p50/p90/p99 are computed
    on demand by nearest-rank.  All operations are mutex-serialised:
    connection threads and workers record concurrently. *)

type t

val sample_cap : int
(** Ring size per endpoint (4096). *)

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to {!Ovo_obs.Trace.monotonic}; inject a fake clock
    in tests. *)

val record : t -> endpoint:string -> ms:float -> unit
(** One completed request on [endpoint] ("solve", "stats", "ping", …)
    with end-to-end latency [ms]. *)

val record_outcome :
  t -> [ `Ok | `Cached | `Cancelled | `Rejected | `Error ] -> unit
(** Outcome tally for solve requests.  [`Cached] implies [`Ok] —
    record exactly one outcome per request. *)

val uptime_s : t -> float

val avg_ms : t -> endpoint:string -> float
(** Mean latency over the ring; [0.] with no samples. *)

val avg_ms_opt : t -> endpoint:string -> float option
(** As {!avg_ms} but [None] with no samples — so a caller can tell "no
    data yet" from "instantaneous".  The server uses the solve average
    to suggest [retry_after_ms] on backpressure, falling back to a fixed
    default before the first solve completes. *)

val percentile : t -> endpoint:string -> float -> float option
(** [percentile t ~endpoint 0.99] by nearest-rank over the ring; [None]
    with no samples. *)

val to_json :
  ?store:Ovo_obs.Json.t ->
  t ->
  queue_depth:int ->
  queue_cap:int ->
  workers:int ->
  cache:Ovo_obs.Json.t ->
  Ovo_obs.Json.t
(** The [stats] reply body.  Deterministic field order: uptime_s,
    queue {depth, cap}, workers, outcomes {ok, cached, cancelled,
    rejected, errors}, cache (as given), store ([null] when the daemon
    runs without persistence, else the
    {!Ovo_store.Result_store.stats_json} object), endpoints (sorted by
    name, each with count, avg_ms, p50_ms, p90_ms, p99_ms). *)

module P = Protocol

type sink = Prom_file of string | Prom_addr of P.addr

(* A spec with a '/' is a file path; a parseable host:port is a TCP
   scrape endpoint; a bare word (no slash, no port) is a file in the
   current directory. *)
let sink_of_string s =
  if String.contains s '/' then Ok (Prom_file s)
  else
    match P.addr_of_string s with
    | Ok (P.Tcp _ as a) -> Ok (Prom_addr a)
    | Ok (P.Unix_sock _) -> Ok (Prom_file s)
    | Error _ as e -> e

let sink_to_string = function
  | Prom_file f -> f
  | Prom_addr a -> P.addr_to_string a

type t = {
  sink : sink option;
  render : unit -> string;
  refresh : unit -> unit;
  period : float;
  stop : bool Atomic.t;
  lsock : Unix.file_descr option;
  mutable ticker : Thread.t option;
  mutable http : Thread.t option;
}

(* tmp + rename so a scraper reading the file never sees a torn write *)
let write_file t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (t.render ());
  close_out oc;
  Sys.rename tmp path

(* Heartbeat: GC/resident gauges stay fresh even with no scraper
   attached, and a file sink gets rewritten atomically every beat. *)
let ticker_loop t =
  let rec nap k =
    if k > 0 && not (Atomic.get t.stop) then begin
      Thread.delay 0.1;
      nap (k - 1)
    end
  in
  let naps = max 1 (int_of_float (Float.round (t.period /. 0.1))) in
  let rec loop () =
    if Atomic.get t.stop then ()
    else begin
      (match t.sink with
      | Some (Prom_file path) -> (
          try write_file t path with Sys_error _ -> ())
      | Some (Prom_addr _) | None -> t.refresh ());
      nap naps;
      loop ()
    end
  in
  loop ()

(* Minimal one-shot HTTP/1.0 responder for a Prometheus scrape: read
   whatever request head arrives, answer with the exposition, close.
   Not a general HTTP server — just enough for a scrape loop or curl. *)
let http_loop t lsock =
  let serve_one fd =
    let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
    Fun.protect ~finally (fun () ->
        (try ignore (Unix.read fd (Bytes.create 4096) 0 4096)
         with Unix.Unix_error _ -> ());
        let body = t.render () in
        let resp =
          Printf.sprintf
            "HTTP/1.0 200 OK\r\n\
             Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: %d\r\n\
             Connection: close\r\n\r\n%s"
            (String.length body) body
        in
        try ignore (Unix.write_substring fd resp 0 (String.length resp))
        with Unix.Unix_error _ -> ())
  in
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ lsock ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
          (match Unix.accept lsock with
          | exception Unix.Unix_error _ -> ()
          | fd, _ -> ignore (Thread.create serve_one fd));
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let start ?(period = 1.0) ~sink ~render ~refresh () =
  let lsock =
    match sink with
    | Some (Prom_addr addr) -> Some (Net.bind_listen addr)
    | Some (Prom_file _) | None -> None
  in
  let t =
    { sink; render; refresh; period; stop = Atomic.make false; lsock;
      ticker = None; http = None }
  in
  t.ticker <- Some (Thread.create ticker_loop t);
  t.http <-
    Option.map (fun ls -> Thread.create (fun () -> http_loop t ls) ()) lsock;
  t

let stop_and_flush t =
  Atomic.set t.stop true;
  (* join before the final snapshot so nothing races the write below —
     once this returns, the file can never be rewritten again *)
  Option.iter Thread.join t.ticker;
  Option.iter Thread.join t.http;
  t.ticker <- None;
  t.http <- None;
  Option.iter
    (fun ls -> try Unix.close ls with Unix.Unix_error _ -> ())
    t.lsock;
  match t.sink with
  | Some (Prom_file path) -> (
      try write_file t path with Sys_error _ -> ())
  | Some (Prom_addr _) | None -> ()

(* Geometric ladder with growth 2^(1/8): eight buckets per octave.
   Index arithmetic is one log2 and one ceil — constant time, no
   allocation beyond float temporaries. *)

let sub = 8.
let num_core = 256
let num_buckets = num_core + 2
let min_bound = 1e-3
let max_rel_error = Float.pow 2. (1. /. 16.) -. 1.

let bucket_upper i =
  if i <= 0 then min_bound
  else if i > num_core then infinity
  else min_bound *. Float.pow 2. (float_of_int i /. sub)

let index v =
  if not (v > min_bound) then 0 (* catches NaN, negatives and <= min_bound *)
  else
    let j = int_of_float (Float.ceil (sub *. Float.log2 (v /. min_bound))) in
    if j < 1 then 1 else if j > num_core then num_core + 1 else j

type t = {
  counts : int array;
  mutable n : int;
  mutable s : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { counts = Array.make num_buckets 0; n = 0; s = 0.; mn = infinity;
    mx = neg_infinity }

let record t v =
  let i = index v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.s <- t.s +. v;
  if v < t.mn then t.mn <- v;
  if v > t.mx then t.mx <- v

let count t = t.n
let sum t = t.s

type snapshot = {
  counts : int array;
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
}

let snapshot (t : t) =
  { counts = Array.copy t.counts; count = t.n; sum = t.s; vmin = t.mn;
    vmax = t.mx }

let empty =
  { counts = Array.make num_buckets 0; count = 0; sum = 0.; vmin = infinity;
    vmax = neg_infinity }

let merge a b =
  { counts = Array.init num_buckets (fun i -> a.counts.(i) + b.counts.(i));
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    vmin = Float.min a.vmin b.vmin;
    vmax = Float.max a.vmax b.vmax }

let quantile s q =
  if s.count = 0 then None
  else
    let q = Float.max 0. (Float.min 1. q) in
    let rank =
      max 1 (min s.count (int_of_float (Float.ceil (q *. float_of_int s.count))))
    in
    let b = ref 0 and acc = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         acc := !acc + s.counts.(i);
         if !acc >= rank then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    let est =
      if !b = 0 then Float.min s.vmin min_bound
      else if !b > num_core then s.vmax
      else
        (* geometric midpoint of the bucket, clamped to what was seen *)
        let mid =
          min_bound *. Float.pow 2. ((float_of_int !b -. 0.5) /. sub)
        in
        Float.min s.vmax (Float.max s.vmin mid)
    in
    Some est

let mean s =
  if s.count = 0 then None else Some (s.sum /. float_of_int s.count)

let escape_with ~quote s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' when quote -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label = escape_with ~quote:true
let escape_help = escape_with ~quote:false

let labels_to_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      ^ "}"

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* Coarse exposition boundaries: every 8th fine bucket is an octave
   boundary, so cumulating fine counts up to them loses nothing. *)
let le_indices = List.init (Histo.num_core / 8) (fun i -> 8 * (i + 1))

let render_histogram buf name labels (s : Histo.snapshot) =
  let base = labels_to_string labels in
  let with_le le =
    let inner =
      (match labels with [] -> "" | _ -> String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
           labels) ^ ",")
    in
    Printf.sprintf "{%sle=\"%s\"}" inner le
  in
  let cum = ref 0 in
  let upto = ref 0 in
  let add_bucket le_str idx_hi =
    while !upto <= idx_hi do
      cum := !cum + s.Histo.counts.(!upto);
      incr upto
    done;
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket%s %d\n" name (with_le le_str) !cum)
  in
  (* the underflow bucket is the ladder's floor *)
  add_bucket (float_str Histo.min_bound) 0;
  List.iter
    (fun i -> add_bucket (Printf.sprintf "%g" (Histo.bucket_upper i)) i)
    le_indices;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket%s %d\n" name (with_le "+Inf") s.Histo.count);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum%s %s\n" name base (float_str s.Histo.sum));
  Buffer.add_string buf
    (Printf.sprintf "%s_count%s %d\n" name base s.Histo.count)

let render reg =
  let buf = Buffer.create 4096 in
  let last_name = ref "" in
  List.iter
    (fun (s : Registry.sample) ->
      if s.Registry.s_name <> !last_name then begin
        last_name := s.Registry.s_name;
        if s.Registry.s_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.Registry.s_name
               (escape_help s.Registry.s_help));
        let ty =
          match s.Registry.s_value with
          | Registry.Counter _ -> "counter"
          | Registry.Gauge _ -> "gauge"
          | Registry.Histogram _ -> "histogram"
        in
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.Registry.s_name ty)
      end;
      match s.Registry.s_value with
      | Registry.Counter v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.Registry.s_name
               (labels_to_string s.Registry.s_labels)
               v)
      | Registry.Gauge v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.Registry.s_name
               (labels_to_string s.Registry.s_labels)
               (float_str v))
      | Registry.Histogram h ->
          render_histogram buf s.Registry.s_name s.Registry.s_labels h)
    (Registry.samples reg);
  Buffer.contents buf

(** A typed registry of named counters, gauges and histograms — the
    aggregation vocabulary the serving path exposes over the [metrics]
    op and the Prometheus exposition ({!Prom}).

    Identity is [(name, label set)]: registering the same pair again
    returns the {e same} instrument (so call sites need not cache
    handles), and re-registering a name with a different {e kind}
    raises — one name, one type, as Prometheus requires.  The first
    registration of a name fixes its help text.

    The hot path never takes the registry lock: {!inc} is an atomic
    add, {!set} a word store, {!observe} a {!Histo.record}.  The mutex
    only guards registration and {!samples}, which walks instruments in
    registration order — names first-seen order, label sets within a
    name in registration order — so two snapshots of the same registry
    render identically. *)

type t

type counter
(** Monotonic integer counter. *)

type gauge
(** Instantaneous float value, single writer per gauge. *)

type histogram

val create : unit -> t

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> string -> histogram

val inc : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val histogram_snapshot : histogram -> Histo.snapshot

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histo.snapshot

type sample = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_value : value;
}

val samples : t -> sample list
(** Every registered instrument, grouped by name (names in first-seen
    order, label sets within a name in registration order). *)

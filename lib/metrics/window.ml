type t = {
  clock : unit -> float;
  size : int;  (* horizon + 1: the current partial second needs a slot *)
  counts : int array;
  sums : float array;
  stamps : int array;  (* wall second each slot currently belongs to *)
  m : Mutex.t;
}

let create ?(clock = Ovo_obs.Trace.monotonic) ?(horizon = 60) () =
  if horizon <= 0 then invalid_arg "Window.create: horizon must be positive";
  let size = horizon + 1 in
  { clock; size; counts = Array.make size 0; sums = Array.make size 0.;
    stamps = Array.make size (-1); m = Mutex.create () }

let horizon t = t.size - 1

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let sec_of t = int_of_float (Float.floor (t.clock ()))

let add t v =
  with_lock t (fun () ->
      let sec = sec_of t in
      let i = sec mod t.size in
      if t.stamps.(i) <> sec then begin
        (* the ring lapped this slot: it held a stale second *)
        t.stamps.(i) <- sec;
        t.counts.(i) <- 0;
        t.sums.(i) <- 0.
      end;
      t.counts.(i) <- t.counts.(i) + 1;
      t.sums.(i) <- t.sums.(i) +. v)

let totals t ~window =
  if window < 1 || window > horizon t then
    invalid_arg "Window.totals: window out of range";
  with_lock t (fun () ->
      let sec = sec_of t in
      let lo = sec - window + 1 in
      let n = ref 0 and s = ref 0. in
      for i = 0 to t.size - 1 do
        if t.stamps.(i) >= lo && t.stamps.(i) <= sec then begin
          n := !n + t.counts.(i);
          s := !s +. t.sums.(i)
        end
      done;
      (!n, !s))

let count t ~window = fst (totals t ~window)

let rate t ~window =
  float_of_int (count t ~window) /. float_of_int window

let mean_value t ~window =
  let n, s = totals t ~window in
  if n = 0 then None else Some (s /. float_of_int n)

type counter = int Atomic.t
type gauge = { mutable g : float }
type histogram = Histo.t

type instr =
  | I_counter of counter
  | I_gauge of gauge
  | I_histo of histogram

type entry = {
  e_labels : (string * string) list;
  e_instr : instr;
}

type group = {
  g_name : string;
  g_help : string;
  mutable g_entries : entry list;  (* reverse registration order *)
}

type t = {
  m : Mutex.t;
  mutable groups : group list;  (* reverse first-seen order *)
}

let create () = { m = Mutex.create (); groups = [] }

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histo _ -> "histogram"

let same_kind a b =
  match (a, b) with
  | I_counter _, I_counter _ | I_gauge _, I_gauge _ | I_histo _, I_histo _ ->
      true
  | _ -> false

let register t ~help ~labels name fresh =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      let g =
        match List.find_opt (fun g -> g.g_name = name) t.groups with
        | Some g -> g
        | None ->
            let g = { g_name = name; g_help = help; g_entries = [] } in
            t.groups <- g :: t.groups;
            g
      in
      match List.find_opt (fun e -> e.e_labels = labels) g.g_entries with
      | Some e ->
          let i = fresh () in
          if not (same_kind e.e_instr i) then
            invalid_arg
              (Printf.sprintf
                 "Registry: %s already registered as a %s, requested as a %s"
                 name (kind_name e.e_instr) (kind_name i));
          e.e_instr
      | None ->
          let i = fresh () in
          (match g.g_entries with
          | e :: _ when not (same_kind e.e_instr i) ->
              invalid_arg
                (Printf.sprintf
                   "Registry: %s already registered as a %s, requested as a %s"
                   name (kind_name e.e_instr) (kind_name i))
          | _ -> ());
          g.g_entries <- { e_labels = labels; e_instr = i } :: g.g_entries;
          i)

let counter t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> I_counter (Atomic.make 0)) with
  | I_counter c -> c
  | _ -> assert false

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> I_gauge { g = 0. }) with
  | I_gauge g -> g
  | _ -> assert false

let histogram t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> I_histo (Histo.create ())) with
  | I_histo h -> h
  | _ -> assert false

let inc c by =
  if by < 0 then invalid_arg "Registry.inc: negative increment";
  ignore (Atomic.fetch_and_add c by)

let counter_value c = Atomic.get c
let set g v = g.g <- v
let gauge_value g = g.g
let observe h v = Histo.record h v
let histogram_snapshot h = Histo.snapshot h

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histo.snapshot

type sample = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_value : value;
}

let samples t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      List.rev t.groups
      |> List.concat_map (fun g ->
             List.rev g.g_entries
             |> List.map (fun e ->
                    let v =
                      match e.e_instr with
                      | I_counter c -> Counter (Atomic.get c)
                      | I_gauge gg -> Gauge gg.g
                      | I_histo h -> Histogram (Histo.snapshot h)
                    in
                    { s_name = g.g_name; s_help = g.g_help;
                      s_labels = e.e_labels; s_value = v })))

(** Prometheus text exposition format 0.0.4 for a {!Registry}.

    One [# HELP] (when non-empty) and one [# TYPE] comment per metric
    name, then one sample line per label set.  Histograms follow the
    native convention: cumulative [<name>_bucket{le="..."}] series at
    the octave boundaries of the {!Histo} ladder (every 8th internal
    bucket — exact, because the fine buckets nest in the coarse ones),
    a ["+Inf"] bucket, and [<name>_sum] / [<name>_count].

    Label {e values} are escaped (backslash, double quote, newline);
    metric and label
    names are the caller's responsibility (everything this project
    registers is a static identifier).  Output is deterministic for a
    given registry: names in first-seen order, label sets in
    registration order, no timestamps. *)

val escape_label : string -> string
(** Contents of a label value between the quotes: backslash, double
    quote and newline become their two-character escapes. *)

val escape_help : string -> string
(** Contents of a HELP line: backslash and newline escaped. *)

val render : Registry.t -> string
(** The full exposition, newline-terminated. *)

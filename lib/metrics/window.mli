(** Rolling time windows — the "how fast right now" companion to the
    lifetime tallies of {!Histo} and {!Registry}.

    A window keeps one slot per wall second over a fixed horizon
    (default 60 s).  {!add} lands an event (a count of one plus an
    optional value) in the current second's slot, lazily resetting a
    slot the ring has lapped, so there is no timer thread and expiry
    costs nothing until the slot is reused.  {!totals} sums the slots of
    the last [window] seconds (the current, partially-filled second
    included), and {!rate} divides by the window length.

    All operations take an internal mutex — windows sit on the request
    path, not the per-layer DP hot path, and one uncontended lock per
    request is noise next to a socket round-trip.  The clock is
    injectable for tests and defaults to {!Ovo_obs.Trace.monotonic}. *)

type t

val create : ?clock:(unit -> float) -> ?horizon:int -> unit -> t
(** [horizon] (default 60) is the largest queryable window in seconds;
    it must be positive. *)

val horizon : t -> int

val add : t -> float -> unit
(** [add t v] records one event of value [v] in the current second. *)

val totals : t -> window:int -> int * float
(** [(events, value sum)] over the last [window] seconds.  Raises
    [Invalid_argument] when [window] is not in [1 .. horizon]. *)

val count : t -> window:int -> int

val rate : t -> window:int -> float
(** Events per second over the window. *)

val mean_value : t -> window:int -> float option
(** Value sum over event count in the window; [None] with no events —
    e.g. a hit ratio when events carry 0/1 values. *)

(** Log-bucketed, mergeable histograms — constant-time recording,
    O(buckets) quantile estimation.

    The bucket boundaries form a geometric ladder: bucket [i] (for
    [1 <= i <= num_core]) covers [(min_bound·g^(i-1), min_bound·g^i]]
    with growth [g = 2^(1/8)], so 256 core buckets span
    [min_bound .. min_bound·2^32] — with [min_bound = 1e-3] (for values
    in milliseconds) that is one microsecond to over an hour.  Bucket
    [0] catches everything at or below [min_bound] (including zero and
    negatives), the last bucket everything above the ladder.

    Quantile estimates return the geometric midpoint of the bucket
    holding the nearest-rank sample, clamped to the observed
    [min..max], so the relative error against an exact nearest-rank
    over the raw samples is bounded by [sqrt g - 1 = 2^(1/16) - 1]
    ({!max_rel_error}, about 4.4%) for values inside the ladder —
    [test/test_metrics.ml] qchecks this bound and CI gates the measured
    error at 10%.

    {!record} touches one array cell and three scalar fields and is
    written for a single writer; under the systhread model concurrent
    writers can lose a [sum] update but never corrupt memory, and
    counts stay exact (int-array increments have no safepoint).
    Cross-thread aggregation is meant to go through {!snapshot} and
    {!merge} instead: shards merge without any lock on the record
    path. *)

val num_core : int
(** Core (laddered) buckets: 256. *)

val num_buckets : int
(** [num_core + 2] — underflow and overflow included. *)

val min_bound : float
(** Upper bound of the underflow bucket (1e-3). *)

val bucket_upper : int -> float
(** Inclusive upper bound of bucket [i]; [infinity] for the overflow
    bucket. *)

val index : float -> int
(** The bucket a value lands in ([0 .. num_buckets - 1]).  NaN and
    non-positive values land in bucket 0. *)

val max_rel_error : float
(** [2^(1/16) - 1] — the worst-case relative error of {!quantile}
    against exact nearest-rank, for values inside the ladder. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int
val sum : t -> float

type snapshot = {
  counts : int array;  (** per-bucket tallies, length {!num_buckets} *)
  count : int;
  sum : float;
  vmin : float;  (** [infinity] when empty *)
  vmax : float;  (** [neg_infinity] when empty *)
}

val snapshot : t -> snapshot
val empty : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise: associative and commutative (float [sum] up to FP
    rounding; everything else exactly). *)

val quantile : snapshot -> float -> float option
(** [quantile s q] estimates the [q]-quantile (nearest-rank convention,
    [q] clamped to [0..1]); [None] when empty. *)

val mean : snapshot -> float option

type t = { n : int; bits : Bitvec.t }

let arity tt = tt.n
let size tt = Bitvec.length tt.bits

let check_arity n =
  if n < 0 || n > Sys.int_size - 2 then invalid_arg "Truthtable: bad arity"

let of_fun n f =
  check_arity n;
  { n; bits = Bitvec.init (1 lsl n) f }

let of_bitvec n v =
  check_arity n;
  if Bitvec.length v <> 1 lsl n then invalid_arg "Truthtable.of_bitvec";
  { n; bits = v }

let to_bitvec tt = tt.bits

let log2_exact len =
  let rec loop n = if 1 lsl n >= len then n else loop (n + 1) in
  let n = loop 0 in
  if 1 lsl n <> len then invalid_arg "Truthtable: length not a power of two";
  n

let of_string s =
  let v = Bitvec.of_string s in
  of_bitvec (log2_exact (String.length s)) v

let to_string tt = Bitvec.to_string tt.bits

let const n b = of_fun n (fun _ -> b)
let var n j =
  if j < 0 || j >= n then invalid_arg "Truthtable.var";
  of_fun n (fun code -> code land (1 lsl j) <> 0)

let eval tt code = Bitvec.get tt.bits code

let eval_bits tt a =
  if Array.length a <> tt.n then invalid_arg "Truthtable.eval_bits";
  let code = ref 0 in
  for j = 0 to tt.n - 1 do
    if a.(j) then code := !code lor (1 lsl j)
  done;
  eval tt !code

let equal a b = a.n = b.n && Bitvec.equal a.bits b.bits
let compare a b = Bitvec.compare a.bits b.bits
let hash tt = Bitvec.hash tt.bits

let count_ones tt = Bitvec.popcount tt.bits

let is_const tt =
  if Bitvec.is_zero tt.bits then Some false
  else if Bitvec.is_ones tt.bits then Some true
  else None

(* [insert_bit code j b] widens [code] by inserting bit [b] at position
   [j]: bits below [j] stay, bits at or above [j] shift up. *)
let insert_bit code j b =
  let low = code land ((1 lsl j) - 1) in
  let high = (code lsr j) lsl (j + 1) in
  high lor low lor (if b then 1 lsl j else 0)

let restrict tt j b =
  if j < 0 || j >= tt.n then invalid_arg "Truthtable.restrict";
  of_fun (tt.n - 1) (fun code -> eval tt (insert_bit code j b))

let cofactors tt j = (restrict tt j false, restrict tt j true)

let depends_on tt j =
  let f0, f1 = cofactors tt j in
  not (equal f0 f1)

let support tt =
  List.filter (depends_on tt) (List.init tt.n (fun j -> j))

let not_ tt = { tt with bits = Bitvec.lnot_ tt.bits }

let binop kernel a b =
  if a.n <> b.n then invalid_arg "Truthtable: arity mismatch";
  { n = a.n; bits = kernel a.bits b.bits }

let ( &&& ) = binop Bitvec.and_
let ( ||| ) = binop Bitvec.or_
let xor = binop Bitvec.xor_

let permute_vars tt perm =
  if Array.length perm <> tt.n then invalid_arg "Truthtable.permute_vars";
  let seen = Array.make tt.n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= tt.n || seen.(j) then
        invalid_arg "Truthtable.permute_vars: not a permutation";
      seen.(j) <- true)
    perm;
  of_fun tt.n (fun code ->
      let old_code = ref 0 in
      for j = 0 to tt.n - 1 do
        if code land (1 lsl j) <> 0 then
          old_code := !old_code lor (1 lsl perm.(j))
      done;
      eval tt !old_code)

(* --- canonical form under variable permutation -------------------- *)

(* Permutation-invariant per-variable fingerprints, refined
   Weisfeiler–Lehman style.  The raw data is collected in one pass over
   the satisfying assignments: [ones] (total satisfying count),
   [c1.(j)] (satisfying count with bit j set) and [c11.(j).(k)]
   (satisfying count with bits j and k both set).  All three transport
   through a variable relabeling, so any ranking computed from them is
   identical for permutation-equivalent functions. *)
let pair_counts tt =
  let n = tt.n in
  let ones = ref 0 in
  let c1 = Array.make n 0 in
  let c11 = Array.make_matrix n n 0 in
  for code = 0 to (1 lsl n) - 1 do
    if eval tt code then begin
      incr ones;
      let rec bits m =
        if m <> 0 then begin
          let j = m land -m in
          let jx = ref 0 in
          let v = ref j in
          while !v > 1 do
            incr jx;
            v := !v lsr 1
          done;
          c1.(!jx) <- c1.(!jx) + 1;
          let rec bits2 m2 =
            if m2 <> 0 then begin
              let k = m2 land -m2 in
              let kx = ref 0 in
              let w = ref k in
              while !w > 1 do
                incr kx;
                w := !w lsr 1
              done;
              c11.(!jx).(!kx) <- c11.(!jx).(!kx) + 1;
              c11.(!kx).(!jx) <- c11.(!kx).(!jx) + 1;
              bits2 (m2 lxor k)
            end
          in
          bits2 (m lxor j);
          bits (m lxor j)
        end
      in
      bits code
    end
  done;
  (!ones, c1, c11)

(* Refine integer ranks until the partition stabilises: a variable's new
   key is its old rank together with the sorted multiset of
   (other's rank, joint satisfying count) pairs.  Ranks are re-assigned
   in sorted-key order, which is itself permutation-invariant. *)
let refine_ranks n c11 ranks0 =
  let ranks = ref ranks0 in
  let classes r = Array.fold_left (fun m x -> max m x) 0 r + 1 in
  let continue = ref true in
  while !continue do
    let key j =
      let others = ref [] in
      for k = 0 to n - 1 do
        if k <> j then others := (!ranks.(k), c11.(j).(k)) :: !others
      done;
      (!ranks.(j), List.sort Stdlib.compare !others)
    in
    let keys = Array.init n key in
    let sorted = List.sort_uniq Stdlib.compare (Array.to_list keys) in
    let next =
      Array.map
        (fun k ->
          let rec index i = function
            | [] -> assert false
            | x :: tl -> if x = k then i else index (i + 1) tl
          in
          index 0 sorted)
        keys
    in
    continue := classes next > classes !ranks;
    ranks := next
  done;
  !ranks

(* Swapping variables [a] and [b] as a [permute_vars] transposition. *)
let swap_fixes tt a b =
  let n = tt.n in
  let p = Array.init n (fun i -> if i = a then b else if i = b then a else i) in
  equal (permute_vars tt p) tt

let rec perms_of = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (perms_of (List.filter (( <> ) x) l)))
        l

let canonicalize ?(max_enum = 720) tt =
  let n = tt.n in
  let identity = Array.init n (fun i -> i) in
  if n <= 1 then (tt, identity)
  else begin
    let _, c1, c11 = pair_counts tt in
    let rank0 =
      let sorted = List.sort_uniq Stdlib.compare (Array.to_list c1) in
      Array.map
        (fun c ->
          let rec index i = function
            | [] -> assert false
            | x :: tl -> if x = c then i else index (i + 1) tl
          in
          index 0 sorted)
        c1
    in
    let ranks = refine_ranks n c11 rank0 in
    (* classes in rank order; members ascending for determinism *)
    let nclasses = Array.fold_left (fun m x -> max m x) 0 ranks + 1 in
    let classes =
      Array.init nclasses (fun r ->
          List.filter (fun j -> ranks.(j) = r) (Array.to_list identity))
    in
    (* a class whose members are pairwise interchangeable (every adjacent
       transposition fixes the table) needs no enumeration: any
       within-class order yields the same table *)
    let is_symmetric = function
      | [] | [ _ ] -> true
      | members ->
          let rec adjacent = function
            | a :: (b :: _ as tl) -> swap_fixes tt a b && adjacent tl
            | _ -> true
          in
          adjacent members
    in
    let fact k =
      let rec go acc i = if i <= 1 then acc else go (acc * i) (i - 1) in
      go 1 k
    in
    let symmetric = Array.map is_symmetric classes in
    let enum_count =
      Array.to_list classes
      |> List.mapi (fun r c -> if symmetric.(r) then 1 else fact (List.length c))
      |> List.fold_left ( * ) 1
    in
    (* candidate within-class orders: all permutations for ambiguous
       classes (bounded by max_enum in total), the deterministic
       ascending order otherwise.  Beyond the budget the digest is still
       deterministic, just no longer guaranteed permutation-invariant —
       a cache keyed on it only loses hits, never correctness. *)
    let choices =
      Array.mapi
        (fun r members ->
          if symmetric.(r) || List.length members <= 1 || enum_count > max_enum
          then [ members ]
          else perms_of members)
        classes
    in
    let best = ref None in
    let rec product acc = function
      | [] ->
          let perm = Array.of_list (List.concat (List.rev acc)) in
          let cand = permute_vars tt perm in
          let better =
            match !best with
            | None -> true
            | Some (bt, bp) ->
                let c = compare cand bt in
                c < 0 || (c = 0 && Stdlib.compare perm bp < 0)
          in
          if better then best := Some (cand, perm)
      | cls :: rest -> List.iter (fun order -> product (order :: acc) rest) cls
    in
    product [] (Array.to_list choices);
    match !best with Some (t, p) -> (t, p) | None -> assert false
  end

(* 64-bit FNV-1a over the canonical bit string, seeded with the arity. *)
let digest_of_canonical canon =
  let fnv_prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let feed byte =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (byte land 0xff))) fnv_prime
  in
  feed canon.n;
  let bits = to_bitvec canon in
  let len = Bitvec.length bits in
  let byte = ref 0 in
  for i = 0 to len - 1 do
    if Bitvec.get bits i then byte := !byte lor (1 lsl (i land 7));
    if i land 7 = 7 || i = len - 1 then begin
      feed !byte;
      byte := 0
    end
  done;
  Printf.sprintf "%d:%016Lx" canon.n !h

let digest tt =
  let canon, _ = canonicalize tt in
  digest_of_canonical canon

let random st n =
  check_arity n;
  of_fun n (fun _ -> Random.State.bool st)

let pp ppf tt = Format.fprintf ppf "%d:%s" tt.n (to_string tt)

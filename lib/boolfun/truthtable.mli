(** Truth tables of Boolean functions.

    A value of type [t] represents a total function
    [f : {0,1}^n -> {0,1}].  Assignments are encoded as integers: bit [j]
    of the index (0 = least significant) is the value given to variable
    [j], with variables numbered [0 .. n-1].  The table of an [n]-variable
    function has [2^n] entries; [n] is limited to the host word size
    (practically [n <= 25] or so for memory reasons).

    This module is the ground-truth representation against which every
    diagram and every optimiser in the repository is checked. *)

type t

val arity : t -> int
(** Number of variables [n]. *)

val size : t -> int
(** Number of entries, [2^n]. *)

val of_fun : int -> (int -> bool) -> t
(** [of_fun n f] tabulates [f] over all [2^n] assignment codes.  This is
    the [O*(2^n)] truth-table extraction step of the paper's Corollary 2:
    [f] may evaluate any representation (expression, circuit, diagram). *)

val of_bitvec : int -> Bitvec.t -> t
(** [of_bitvec n v] wraps a bit vector of length [2^n]. *)

val to_bitvec : t -> Bitvec.t
(** Underlying bits (copy-free; treat as read-only). *)

val of_string : string -> t
(** [of_string "0110"] is the 2-variable XOR (length must be a power of
    two); entry [i] of the string is [f] at assignment code [i]. *)

val to_string : t -> string

val const : int -> bool -> t
(** [const n b] is the constant function of arity [n]. *)

val var : int -> int -> t
(** [var n j] is the projection [x_j] as an [n]-variable function. *)

val eval : t -> int -> bool
(** [eval tt code] is [f] at assignment [code]. *)

val eval_bits : t -> bool array -> bool
(** [eval_bits tt a] evaluates with [a.(j)] the value of variable [j];
    [Array.length a] must equal the arity. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val count_ones : t -> int
(** Number of satisfying assignments. *)

val is_const : t -> bool option
(** [Some b] when the function is constantly [b], else [None]. *)

val restrict : t -> int -> bool -> t
(** [restrict tt j b] is [f] with variable [j] fixed to [b], as a function
    of the remaining [n-1] variables.  Variables above [j] are renumbered
    down by one (variable [k > j] becomes [k-1]). *)

val cofactors : t -> int -> t * t
(** [cofactors tt j] is [(restrict tt j false, restrict tt j true)]. *)

val depends_on : t -> int -> bool
(** [depends_on tt j] iff the two cofactors w.r.t. [j] differ. *)

val support : t -> int list
(** Variables the function essentially depends on, ascending. *)

val not_ : t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val xor : t -> t -> t
(** Pointwise connectives; binary ones require equal arities. *)

val permute_vars : t -> int array -> t
(** [permute_vars tt perm] relabels variables: the result [g] satisfies
    [g(y) = f(x)] where [x.(perm.(j)) = y.(j)].  [perm] must be a
    permutation of [0 .. n-1].  In other words, variable [perm.(j)] of [f]
    becomes variable [j] of [g]. *)

val canonicalize : ?max_enum:int -> t -> t * int array
(** [canonicalize tt] is [(canon, perm)] — a canonical representative of
    [tt] under variable relabeling, with [canon = permute_vars tt perm]
    (so variable [j] of [canon] is variable [perm.(j)] of [tt]).

    Variables are ranked by permutation-invariant fingerprints (per-pair
    satisfying-assignment counts, refined to a fixpoint); residual ties
    are resolved either by a symmetry check (interchangeable variables
    need no choice) or by exhausting the tied orders and keeping the
    lexicographically smallest table.  The search is capped at
    [max_enum] (default 720) candidate orders: within the cap the result
    is identical for every permutation-equivalent input; beyond it the
    result is still deterministic per input, merely not guaranteed to
    coincide across permutations.  An ordering optimal for [canon] maps
    back to one for [tt] through [perm]. *)

val digest_of_canonical : t -> string
(** The digest of a table taken as already canonical:
    [digest tt = digest_of_canonical (fst (canonicalize tt))].  For
    callers that need both the canonicalizing permutation and the
    digest, this avoids canonicalizing twice. *)

val digest : t -> string
(** A stable content digest of the {!canonicalize}d function: the
    variable count and a 64-bit FNV-1a hash of the canonical bit-vector,
    as ["<n>:<16 hex digits>"].  Equal functions always collide;
    permutation-equivalent functions collide whenever canonicalization
    stayed within its enumeration cap.  Intended as a cache key — pair
    it with an equality check on the canonical table to rule out hash
    collisions. *)

val random : Random.State.t -> int -> t
(** Uniformly random function of the given arity. *)

val pp : Format.formatter -> t -> unit
